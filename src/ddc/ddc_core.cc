#include "ddc/ddc_core.h"

#include <algorithm>
#include <utility>

#include "common/bit_util.h"
#include "common/check.h"
#include "common/kernels.h"
#include "common/shape.h"

namespace ddc {

namespace {

// Drops coordinate `skip_dim`, yielding the transverse position used to
// index a face store.
Cell Transverse(const Cell& offset, int skip_dim) {
  Cell out;
  out.reserve(offset.size() - 1);
  for (size_t i = 0; i < offset.size(); ++i) {
    if (static_cast<int>(i) == skip_dim) continue;
    out.push_back(offset[i]);
  }
  return out;
}

// Allocation-free variant for the batched descent's hot loop: writes the
// transverse position into a caller-owned buffer that keeps its capacity
// across calls.
void TransverseInto(const Cell& offset, int skip_dim, Cell& out) {
  out.clear();
  for (size_t i = 0; i < offset.size(); ++i) {
    if (static_cast<int>(i) == skip_dim) continue;
    out.push_back(offset[i]);
  }
}

// Counting-sorts `items` (each carrying a `home` child mask) so every
// child's items form one contiguous run, using the caller's reusable
// scratch buffers. Shared by the batched query and batched update descents.
template <typename Item>
void CountingSortByHome(std::span<Item> items, std::vector<Item>& sorted,
                        std::vector<size_t>& begin,
                        std::vector<size_t>& cursor, uint32_t num_children) {
  std::fill(begin.begin(), begin.end(), size_t{0});
  for (const Item& item : items) ++begin[item.home + 1];
  for (uint32_t m = 0; m < num_children; ++m) begin[m + 1] += begin[m];
  sorted.resize(items.size());
  std::copy(begin.begin(), begin.end() - 1, cursor.begin());
  for (size_t q = 0; q < items.size(); ++q) {
    sorted[cursor[items[q].home]++] = std::move(items[q]);
  }
  std::move(sorted.begin(), sorted.end(), items.begin());
}

}  // namespace

// Thread-local scratch for the const batched-query descent: capacity
// persists across PrefixSumBatch calls (and across the cubes one thread
// serves), so steady-state batches run allocation-free. `busy` falls back
// to a fresh local scratch on reentrancy instead of corrupting a walk.
struct DdcCore::BatchTls {
  BatchScratch scratch;
  std::vector<BatchItem> items;
  bool busy = false;
};

DdcCore::BatchTls& DdcCore::GetBatchTls() {
  thread_local BatchTls tls;
  return tls;
}

size_t DdcCore::update_scratch_bytes() const {
  return update_items_.capacity() * sizeof(UpdateItem) +
         update_scratch_.sorted.capacity() * sizeof(UpdateItem) +
         update_scratch_.begin.capacity() * sizeof(size_t) +
         update_scratch_.cursor.capacity() * sizeof(size_t) +
         update_scratch_.deltas.capacity() * sizeof(int64_t);
}

obs::Counter& DdcCore::ObsValuesRead() {
  static obs::Counter& c =
      *obs::MetricsRegistry::Default().GetCounter("ddc.values_read");
  return c;
}

obs::Counter& DdcCore::ObsValuesWritten() {
  static obs::Counter& c =
      *obs::MetricsRegistry::Default().GetCounter("ddc.values_written");
  return c;
}

obs::Counter& DdcCore::ObsNodesVisited() {
  static obs::Counter& c =
      *obs::MetricsRegistry::Default().GetCounter("ddc.nodes_visited");
  return c;
}

obs::Counter& DdcCore::ObsFaceLookups() {
  static obs::Counter& c =
      *obs::MetricsRegistry::Default().GetCounter("ddc.face_lookups");
  return c;
}

DdcCore::DdcCore(int dims, int64_t side, const DdcOptions& options,
                 OpCounters* counters, Arena* arena)
    : dims_(dims), side_(side), options_(options), counters_(counters) {
  DDC_CHECK(dims_ >= 1 && dims_ <= 20);
  DDC_CHECK(side_ >= 2 && IsPowerOfTwo(side_));
  DDC_CHECK(options_.elide_levels >= 0 && options_.elide_levels < 62);
  num_children_ = 1u << dims_;
  min_box_side_ = std::min<int64_t>(side_, int64_t{1}
                                               << (options_.elide_levels + 1));
  if (arena == nullptr) {
    owned_arena_ = std::make_unique<Arena>();
    arena = owned_arena_.get();
  }
  arena_ = arena;
}

DdcCore::Node* DdcCore::EnsureNode(Node** slot) {
  if (*slot == nullptr) {
    Node* node = arena_->Create<Node>();
    node->boxes = arena_->CreateArray<BoxData>(num_children_);
    *slot = node;
  }
  return *slot;
}

DdcCore::BoxData* DdcCore::EnsureBox(Node* node, uint32_t mask,
                                     int64_t box_side) {
  BoxData* box = &node->boxes[mask];
  if (!box->present) {
    box->present = true;
    if (dims_ > 1) {
      box->faces = arena_->CreateArray<FaceStore>(static_cast<size_t>(dims_));
      for (int j = 0; j < dims_; ++j) {
        box->faces[j].Init(arena_, dims_ - 1, box_side, options_, counters_);
      }
    }
  }
  return box;
}

MdArray<int64_t>* DdcCore::EnsureRaw(Node* node, uint32_t mask,
                                     int64_t box_side) {
  if (node->child_raw == nullptr) {
    node->child_raw = arena_->CreateArray<MdArray<int64_t>*>(num_children_);
  }
  MdArray<int64_t>*& slot = node->child_raw[mask];
  if (slot == nullptr) {
    slot = arena_->Create<MdArray<int64_t>>(Shape::Cube(dims_, box_side));
  }
  return slot;
}

void DdcCore::Add(const Cell& cell, int64_t delta) {
  DDC_DCHECK(static_cast<int>(cell.size()) == dims_);
  if (delta == 0) return;
  total_ += delta;
  if (side_ <= min_box_side_) {
    if (root_raw_ == nullptr) {
      root_raw_ = arena_->Create<MdArray<int64_t>>(Shape::Cube(dims_, side_));
    }
    CountNode(root_raw_);
    root_raw_->at(cell) += delta;
    CountWrite(1);
    return;
  }
  EnsureNode(&root_);
  AddRec(root_, side_, cell, delta);
}

void DdcCore::AddRec(Node* node, int64_t node_side,
                     const Cell& offset_in_node, int64_t delta) {
  CountNode(node);
  const int64_t k = node_side / 2;
  uint32_t mask = 0;
  Cell box_offset = offset_in_node;
  for (int i = 0; i < dims_; ++i) {
    size_t ui = static_cast<size_t>(i);
    if (box_offset[ui] >= k) {
      mask |= 1u << i;
      box_offset[ui] -= k;
    }
  }

  BoxData* box = EnsureBox(node, mask, k);
  box->subtotal += delta;
  CountWrite(1);
  // One point update per row-sum group: the dimension-j line sum through the
  // updated cell changes by delta (Section 4.2).
  for (int j = 0; j < dims_ && dims_ > 1; ++j) {
    box->faces[j].Add(Transverse(box_offset, j), delta);
  }

  if (k > min_box_side_) {
    if (node->child_nodes == nullptr) {
      node->child_nodes = arena_->CreateArray<Node*>(num_children_);
    }
    Node* child = EnsureNode(&node->child_nodes[mask]);
    AddRec(child, k, box_offset, delta);
  } else {
    MdArray<int64_t>* raw = EnsureRaw(node, mask, k);
    CountNode(raw);
    raw->at(box_offset) += delta;
    CountWrite(1);
  }
}

void DdcCore::AddBatch(std::span<const Cell> cells,
                       std::span<const int64_t> deltas) {
  DDC_CHECK(cells.size() == deltas.size());
  if (cells.empty()) return;
  if (side_ <= min_box_side_) {
    // Whole cube is one leaf block: the batch costs one block visit.
    bool touched = false;
    for (size_t q = 0; q < cells.size(); ++q) {
      DDC_DCHECK(static_cast<int>(cells[q].size()) == dims_);
      if (deltas[q] == 0) continue;
      if (root_raw_ == nullptr) {
        root_raw_ =
            arena_->Create<MdArray<int64_t>>(Shape::Cube(dims_, side_));
      }
      if (!touched) {
        CountNode(root_raw_);
        touched = true;
      }
      total_ += deltas[q];
      root_raw_->at(cells[q]) += deltas[q];
      CountWrite(1);
    }
    return;
  }
  // The items buffer and the counting-sort scratch are members: consecutive
  // batches on one cube (the ApplyBatch steady state) reuse the grown
  // capacity instead of paying a heap round-trip per batch.
  std::vector<UpdateItem>& items = update_items_;
  items.clear();
  items.reserve(cells.size());
  for (size_t q = 0; q < cells.size(); ++q) {
    DDC_DCHECK(static_cast<int>(cells[q].size()) == dims_);
    if (deltas[q] == 0) continue;
    total_ += deltas[q];
    items.push_back(UpdateItem{cells[q], deltas[q], 0});
  }
  if (items.empty()) return;
  EnsureNode(&root_);
  update_scratch_.begin.resize(num_children_ + 1);
  update_scratch_.cursor.resize(num_children_);
  AddBatchRec(root_, side_, items, update_scratch_);
}

void DdcCore::AddBatchRec(Node* node, int64_t node_side,
                          std::span<UpdateItem> items,
                          UpdateScratch& scratch) {
  // Once the descent has fanned out to a single item there is nothing left
  // to share; the plain point-update descent finishes the path without the
  // grouping machinery.
  if (items.size() == 1) {
    AddRec(node, node_side, items[0].offset, items[0].delta);
    return;
  }
  // The node (and its box array) is visited once for the whole group, as in
  // the batched query descent.
  CountNode(node);
  const int64_t k = node_side / 2;
  for (UpdateItem& item : items) {
    uint32_t mask = 0;
    for (int i = 0; i < dims_; ++i) {
      size_t ui = static_cast<size_t>(i);
      if (item.offset[ui] >= k) {
        mask |= 1u << i;
        item.offset[ui] -= k;
      }
    }
    item.home = mask;
  }
  CountingSortByHome(items, scratch.sorted, scratch.begin, scratch.cursor,
                     num_children_);

  // Contiguous per-item deltas in sorted order: each group's subtotal then
  // collapses to one vectorized block sum instead of a strided struct walk.
  // Only worth the extra pass while the node still holds a crowd; deeper
  // nodes with small groups keep the scalar loop.
  const bool use_delta_buffer = !kernels::UseScalar() && items.size() >= 32;
  if (use_delta_buffer) {
    scratch.deltas.resize(items.size());
    for (size_t q = 0; q < items.size(); ++q) {
      scratch.deltas[q] = items[q].delta;
    }
  }

  // Pass 1: every group's node-local writes (box subtotal + face adds)
  // before any recursion — the node's box array stays hot across groups,
  // and the delta buffer is free again for deeper nodes by the time pass 2
  // descends.
  size_t lo = 0;
  while (lo < items.size()) {
    const uint32_t mask = items[lo].home;
    size_t hi = lo + 1;
    while (hi < items.size() && items[hi].home == mask) ++hi;
    const auto group = items.subspan(lo, hi - lo);

    int64_t group_sum;
    if (use_delta_buffer) {
      group_sum = kernels::Sum(scratch.deltas.data() + lo, hi - lo);
    } else {
      group_sum = 0;
      for (const UpdateItem& item : group) group_sum += item.delta;
    }
    lo = hi;
    BoxData* box = EnsureBox(node, mask, k);
    box->subtotal += group_sum;  // One write absorbs the whole group.
    CountWrite(1);

    if (dims_ > 1) {
      // All updates sharing a dimension-j line land on one face cell
      // (Section 4.2), so a large group needs one FaceStore::Add per
      // distinct line, not per update. The accumulator map only pays for
      // itself on groups big enough to contain shared lines, though: its
      // clear() walks a bucket array sized by the largest group ever seen,
      // which would swamp the many small groups at deep levels.
      constexpr size_t kFaceAccMinGroup = 16;
      if (group.size() < kFaceAccMinGroup) {
        for (const UpdateItem& item : group) {
          for (int j = 0; j < dims_; ++j) {
            TransverseInto(item.offset, j, scratch.transverse);
            box->faces[j].Add(scratch.transverse, item.delta);
          }
        }
      } else {
        auto& acc = scratch.face_acc;
        for (int j = 0; j < dims_; ++j) {
          acc.clear();
          for (const UpdateItem& item : group) {
            // operator[] only copies the scratch key when the line is new;
            // repeat lines (the coalescing payoff) stay allocation-free.
            TransverseInto(item.offset, j, scratch.transverse);
            acc[scratch.transverse] += item.delta;
          }
          for (const auto& [line, line_delta] : acc) {
            if (line_delta != 0) box->faces[j].Add(line, line_delta);
          }
        }
      }
    }
  }

  // Pass 2: descend per group. Before one group's subtree runs, the next
  // group's level-(L+1) target is prefetched, so its miss latency overlaps
  // the current group's work.
  lo = 0;
  while (lo < items.size()) {
    const uint32_t mask = items[lo].home;
    size_t hi = lo + 1;
    while (hi < items.size() && items[hi].home == mask) ++hi;
    const auto group = items.subspan(lo, hi - lo);
    lo = hi;

    if (lo < items.size()) {
      const uint32_t next_mask = items[lo].home;
      if (k > min_box_side_) {
        if (node->child_nodes != nullptr) {
          kernels::PrefetchRead(node->child_nodes[next_mask]);
        }
      } else if (node->child_raw != nullptr &&
                 node->child_raw[next_mask] != nullptr) {
        kernels::PrefetchRead(node->child_raw[next_mask]->data());
      }
    }

    if (k > min_box_side_) {
      if (node->child_nodes == nullptr) {
        node->child_nodes = arena_->CreateArray<Node*>(num_children_);
      }
      Node* child = EnsureNode(&node->child_nodes[mask]);
      AddBatchRec(child, k, group, scratch);
    } else {
      MdArray<int64_t>* raw = EnsureRaw(node, mask, k);
      CountNode(raw);
      for (const UpdateItem& item : group) {
        raw->at(item.offset) += item.delta;
      }
      CountWrite(static_cast<int64_t>(group.size()));
    }
  }
}

void DdcCore::BuildFromArray(const MdArray<int64_t>& array) {
  DDC_CHECK(total_ == 0 && root_ == nullptr && root_raw_ == nullptr);
  DDC_CHECK(array.shape() == Shape::Cube(dims_, side_));
  if (side_ <= min_box_side_) {
    int64_t total = 0;
    bool any_nonzero = false;
    array.ForEach([&](const Cell&, const int64_t& v) {
      total += v;
      any_nonzero |= (v != 0);
    });
    if (any_nonzero) {
      root_raw_ = arena_->Create<MdArray<int64_t>>(array);
    }
    total_ = total;
    return;
  }
  EnsureNode(&root_);
  total_ = BuildNodeFromArray(root_, side_, UniformCell(dims_, 0), array);
}

int64_t DdcCore::BuildNodeFromArray(Node* node, int64_t node_side,
                                    const Cell& anchor,
                                    const MdArray<int64_t>& array) {
  const int64_t k = node_side / 2;
  int64_t total = 0;
  for (uint32_t mask = 0; mask < num_children_; ++mask) {
    Cell box_anchor = anchor;
    for (int i = 0; i < dims_; ++i) {
      if (mask & (1u << i)) box_anchor[static_cast<size_t>(i)] += k;
    }

    // One scan of the box region: subtotal, occupancy, and (for d > 1) the
    // d line-sum arrays G_j that seed the face stores.
    int64_t box_total = 0;
    bool any_nonzero = false;
    std::vector<MdArray<int64_t>> line_sums;
    if (dims_ > 1) {
      line_sums.reserve(static_cast<size_t>(dims_));
      for (int j = 0; j < dims_; ++j) {
        line_sums.emplace_back(Shape::Cube(dims_ - 1, k));
      }
    }
    const Shape box_shape = Shape::Cube(dims_, k);
    Cell offset(static_cast<size_t>(dims_), 0);
    do {
      const int64_t v = array.at(CellAdd(box_anchor, offset));
      if (v == 0) continue;
      any_nonzero = true;
      box_total += v;
      for (int j = 0; j < dims_ && dims_ > 1; ++j) {
        line_sums[static_cast<size_t>(j)].at(Transverse(offset, j)) += v;
      }
    } while (box_shape.NextCell(&offset));
    total += box_total;
    if (!any_nonzero) continue;

    BoxData* box = EnsureBox(node, mask, k);
    box->subtotal = box_total;
    CountWrite(1);
    for (int j = 0; j < dims_ && dims_ > 1; ++j) {
      box->faces[j].BuildFromDense(line_sums[static_cast<size_t>(j)]);
    }

    if (k > min_box_side_) {
      if (node->child_nodes == nullptr) {
        node->child_nodes = arena_->CreateArray<Node*>(num_children_);
      }
      Node* child = EnsureNode(&node->child_nodes[mask]);
      const int64_t child_total =
          BuildNodeFromArray(child, k, box_anchor, array);
      DDC_CHECK(child_total == box_total);
    } else {
      MdArray<int64_t>* raw = EnsureRaw(node, mask, k);
      Cell cursor(static_cast<size_t>(dims_), 0);
      do {
        raw->at(cursor) = array.at(CellAdd(box_anchor, cursor));
      } while (box_shape.NextCell(&cursor));
      CountWrite(raw->size());
    }
  }
  return total;
}

int64_t DdcCore::PrefixSum(const Cell& cell) const {
  DDC_DCHECK(static_cast<int>(cell.size()) == dims_);
  if (root_raw_ != nullptr) return RawPrefix(*root_raw_, cell);
  if (root_ == nullptr) return 0;
  return PrefixSumRec(root_, side_, cell);
}

int64_t DdcCore::PrefixSumRec(const Node* node, int64_t node_side,
                              const Cell& offset_in_node) const {
  CountNode(node);
  const int64_t k = node_side / 2;
  int64_t sum = 0;
  Cell clamped(static_cast<size_t>(dims_));
  for (uint32_t mask = 0; mask < num_children_; ++mask) {
    if (!node->boxes[mask].present) continue;  // All-zero region.
    // Classify the target against this box (Figure 10): before the box in
    // some dimension -> no contribution; covered -> descend; completely
    // after -> subtotal; otherwise one row-sum value.
    bool before = false;
    bool covered = true;
    int first_beyond = -1;
    for (int i = 0; i < dims_; ++i) {
      size_t ui = static_cast<size_t>(i);
      const Coord rel =
          offset_in_node[ui] - ((mask & (1u << i)) ? k : 0);
      if (rel < 0) {
        before = true;
        break;
      }
      if (rel >= k) {
        covered = false;
        clamped[ui] = k - 1;
        if (first_beyond < 0) first_beyond = i;
      } else {
        clamped[ui] = rel;
      }
    }
    if (before) continue;

    if (covered) {
      if (k <= min_box_side_) {
        // Raw leaf block: sum the covered prefix of A cells directly (the
        // Section 4.4 compensation for the elided levels).
        const MdArray<int64_t>* raw =
            node->child_raw != nullptr ? node->child_raw[mask] : nullptr;
        DDC_DCHECK(raw != nullptr);
        sum += RawPrefix(*raw, clamped);
      } else {
        const Node* child =
            node->child_nodes != nullptr ? node->child_nodes[mask] : nullptr;
        DDC_DCHECK(child != nullptr);
        sum += PrefixSumRec(child, k, clamped);
      }
      continue;
    }

    if (first_beyond >= 0) {
      // When the clamped offset is the all-maxed corner the needed stored
      // value is the subtotal S itself; serve it from the O(1) cache (this
      // subsumes the paper's "target completely after the box" case).
      bool all_maxed = true;
      for (int i = 0; i < dims_; ++i) {
        if (clamped[static_cast<size_t>(i)] != k - 1) {
          all_maxed = false;
          break;
        }
      }
      if (all_maxed || dims_ == 1) {
        sum += node->boxes[mask].subtotal;
        CountRead(1);
      } else {
        // The needed row-sum value has coordinate first_beyond maxed; read
        // it from that face as a (d-1)-dimensional prefix query.
        CountFaceLookup();
        sum += node->boxes[mask].faces[first_beyond].PrefixSum(
            Transverse(clamped, first_beyond));
      }
    }
  }
  return sum;
}

void DdcCore::PrefixSumBatch(std::span<const Cell> cells,
                             std::span<int64_t> out) const {
  DDC_CHECK(cells.size() == out.size());
  if (cells.empty()) return;
  if (root_raw_ != nullptr) {
    for (size_t q = 0; q < cells.size(); ++q) {
      DDC_DCHECK(static_cast<int>(cells[q].size()) == dims_);
      out[q] = RawPrefix(*root_raw_, cells[q]);
    }
    return;
  }
  if (root_ == nullptr) {
    std::fill(out.begin(), out.end(), int64_t{0});
    return;
  }
  // PrefixSumBatch is const (ConcurrentCube runs it from parallel readers),
  // so reusable scratch lives in thread-local storage rather than in the
  // cube. The busy flag covers reentrancy (a nested cube's batch issued
  // from inside an outer batch): the inner call falls back to fresh local
  // buffers instead of clobbering the outer call's scratch.
  BatchTls& tls = GetBatchTls();
  BatchTls local;
  BatchTls& use = tls.busy ? local : tls;
  use.busy = true;
  std::vector<BatchItem>& items = use.items;
  items.resize(cells.size());
  for (size_t q = 0; q < cells.size(); ++q) {
    DDC_DCHECK(static_cast<int>(cells[q].size()) == dims_);
    out[q] = 0;
    items[q].offset = cells[q];
    items[q].out = &out[q];
  }
  BatchScratch& scratch = use.scratch;
  scratch.begin.resize(num_children_ + 1);
  scratch.cursor.resize(num_children_);
  scratch.clamped.resize(static_cast<size_t>(dims_));
  PrefixSumBatchRec(root_, side_, items, scratch);
  use.busy = false;
}

void DdcCore::PrefixSumBatchRec(const Node* node, int64_t node_side,
                                std::span<BatchItem> items,
                                BatchScratch& scratch) const {
  // The node (and its box array) is visited once for the whole group — this
  // shared visit is the point of batching.
  CountNode(node);
  const int64_t k = node_side / 2;
  Cell& clamped = scratch.clamped;
  for (size_t q = 0; q < items.size(); ++q) {
    BatchItem& item = items[q];
    // The child containing the target: exactly the mask whose box classifies
    // as "covered" in the Figure 10 walk.
    uint32_t home_mask = 0;
    for (int i = 0; i < dims_; ++i) {
      if (item.offset[static_cast<size_t>(i)] >= k) home_mask |= 1u << i;
    }
    item.home = home_mask;

    // Accumulate this item's contributions from every other present box
    // (before / partial / completely-after), as in PrefixSumRec.
    for (uint32_t mask = 0; mask < num_children_; ++mask) {
      if (mask == home_mask || !node->boxes[mask].present) continue;
      bool before = false;
      int first_beyond = -1;
      for (int i = 0; i < dims_; ++i) {
        size_t ui = static_cast<size_t>(i);
        const Coord rel =
            item.offset[ui] - ((mask & (1u << i)) ? k : 0);
        if (rel < 0) {
          before = true;
          break;
        }
        if (rel >= k) {
          clamped[ui] = k - 1;
          if (first_beyond < 0) first_beyond = i;
        } else {
          clamped[ui] = rel;
        }
      }
      if (before) continue;
      DDC_DCHECK(first_beyond >= 0);  // mask != home_mask => not covered.
      bool all_maxed = true;
      for (int i = 0; i < dims_; ++i) {
        if (clamped[static_cast<size_t>(i)] != k - 1) {
          all_maxed = false;
          break;
        }
      }
      if (all_maxed || dims_ == 1) {
        *item.out += node->boxes[mask].subtotal;
        CountRead(1);
      } else {
        CountFaceLookup();
        TransverseInto(clamped, first_beyond, scratch.transverse);
        *item.out += node->boxes[mask].faces[first_beyond].PrefixSum(
            scratch.transverse);
      }
    }

    // Rebase the offset into home-child coordinates for the descent.
    for (int i = 0; i < dims_; ++i) {
      if (home_mask & (1u << i)) item.offset[static_cast<size_t>(i)] -= k;
    }
  }

  // Counting sort the group by home child so each child is descended once,
  // with its queries contiguous. The scratch buffers are free again by the
  // time the recursion below re-enters this function. A one-item group is
  // already sorted — deep levels are dominated by them, so skipping the
  // sort there matters.
  if (items.size() > 1) {
    CountingSortByHome(items, scratch.sorted, scratch.begin, scratch.cursor,
                       num_children_);
  }

  // Groups are contiguous runs of equal `home`; rediscover them by scanning
  // (begin/cursor are clobbered once the recursion reuses the scratch).
  size_t lo = 0;
  while (lo < items.size()) {
    const uint32_t mask = items[lo].home;
    size_t hi = lo + 1;
    while (hi < items.size() && items[hi].home == mask) ++hi;
    auto group = items.subspan(lo, hi - lo);
    lo = hi;

    // Prefetch the next group's level-(L+1) target so its cache miss
    // overlaps this group's descent.
    if (lo < items.size()) {
      const uint32_t next_mask = items[lo].home;
      if (node->boxes[next_mask].present) {
        if (k <= min_box_side_) {
          if (node->child_raw != nullptr &&
              node->child_raw[next_mask] != nullptr) {
            kernels::PrefetchRead(node->child_raw[next_mask]->data());
          }
        } else if (node->child_nodes != nullptr) {
          kernels::PrefetchRead(node->child_nodes[next_mask]);
        }
      }
    }

    if (!node->boxes[mask].present) continue;  // All-zero region: adds 0.
    if (k <= min_box_side_) {
      const MdArray<int64_t>* raw =
          node->child_raw != nullptr ? node->child_raw[mask] : nullptr;
      DDC_DCHECK(raw != nullptr);
      for (BatchItem& item : group) {
        *item.out += RawPrefix(*raw, item.offset);
      }
    } else {
      const Node* child =
          node->child_nodes != nullptr ? node->child_nodes[mask] : nullptr;
      DDC_DCHECK(child != nullptr);
      PrefixSumBatchRec(child, k, group, scratch);
    }
  }
}

int64_t DdcCore::RawPrefix(const MdArray<int64_t>& raw,
                           const Cell& offset) const {
  if (kernels::UseScalar()) return RawPrefixScalarRef(raw, offset);
  CountNode(&raw);  // A leaf block is one secondary-storage unit.
  // Row-major leaf blocks keep the innermost dimension contiguous, so the
  // Section 4.4 dominance sum is an odometer over the outer dimensions with
  // one vectorized block sum per inner run. Counter semantics match the
  // scalar reference: one node, one read per cell summed.
  const size_t inner = static_cast<size_t>(dims_ - 1);
  const size_t run = static_cast<size_t>(offset[inner]) + 1;
  const int64_t* data = raw.data();
  int64_t sum = 0;
  int64_t reads = 0;
  Cell cursor(static_cast<size_t>(dims_), 0);
  while (true) {
    const int64_t base = raw.shape().LinearIndex(cursor);
    sum += kernels::Sum(data + base, run);
    reads += static_cast<int64_t>(run);
    int dim = dims_ - 2;
    while (dim >= 0) {
      size_t ud = static_cast<size_t>(dim);
      if (++cursor[ud] <= offset[ud]) break;
      cursor[ud] = 0;
      --dim;
    }
    if (dim < 0) break;
  }
  CountRead(reads);
  return sum;
}

int64_t DdcCore::RawPrefixScalarRef(const MdArray<int64_t>& raw,
                                    const Cell& offset) const {
  CountNode(&raw);  // A leaf block is one secondary-storage unit.
  int64_t sum = 0;
  Cell cursor(static_cast<size_t>(dims_), 0);
  int64_t reads = 0;
  while (true) {
    sum += raw.at(cursor);
    ++reads;
    int dim = dims_ - 1;
    while (dim >= 0) {
      size_t ud = static_cast<size_t>(dim);
      if (++cursor[ud] <= offset[ud]) break;
      cursor[ud] = 0;
      --dim;
    }
    if (dim < 0) break;
  }
  CountRead(reads);
  return sum;
}

int64_t DdcCore::Get(const Cell& cell) const {
  DDC_DCHECK(static_cast<int>(cell.size()) == dims_);
  if (root_raw_ != nullptr) {
    CountRead(1);
    return root_raw_->at(cell);
  }
  const Node* node = root_;
  int64_t node_side = side_;
  Cell offset = cell;
  while (node != nullptr) {
    const int64_t k = node_side / 2;
    uint32_t mask = 0;
    for (int i = 0; i < dims_; ++i) {
      size_t ui = static_cast<size_t>(i);
      if (offset[ui] >= k) {
        mask |= 1u << i;
        offset[ui] -= k;
      }
    }
    if (!node->boxes[mask].present) return 0;
    if (k <= min_box_side_) {
      const MdArray<int64_t>* raw =
          node->child_raw != nullptr ? node->child_raw[mask] : nullptr;
      if (raw == nullptr) return 0;
      CountRead(1);
      return raw->at(offset);
    }
    node = node->child_nodes != nullptr ? node->child_nodes[mask] : nullptr;
    node_side = k;
  }
  return 0;
}

int64_t DdcCore::StorageCells() const {
  if (root_raw_ != nullptr) return root_raw_->size();
  if (root_ == nullptr) return 0;
  return NodeStorage(root_, side_);
}

int64_t DdcCore::NodeStorage(const Node* node, int64_t node_side) const {
  const int64_t k = node_side / 2;
  int64_t total = 0;
  for (uint32_t mask = 0; mask < num_children_; ++mask) {
    const BoxData& box = node->boxes[mask];
    if (!box.present) continue;
    total += 1;  // Subtotal.
    for (int j = 0; j < dims_ && dims_ > 1; ++j) {
      total += box.faces[j].StorageCells();
    }
    if (k <= min_box_side_) {
      const MdArray<int64_t>* raw =
          node->child_raw != nullptr ? node->child_raw[mask] : nullptr;
      if (raw != nullptr) total += raw->size();
    } else if (node->child_nodes != nullptr &&
               node->child_nodes[mask] != nullptr) {
      total += NodeStorage(node->child_nodes[mask], k);
    }
  }
  return total;
}

DdcStats DdcCore::Stats() const {
  DdcStats stats;
  if (root_raw_ != nullptr) {
    stats.raw_blocks = 1;
    stats.raw_cells = root_raw_->size();
    root_raw_->ForEach([&](const Cell&, const int64_t& v) {
      if (v != 0) ++stats.nonzero_cells;
    });
    return stats;
  }
  if (root_ == nullptr) return stats;
  NodeStats(root_, side_, &stats);
  return stats;
}

void DdcCore::NodeStats(const Node* node, int64_t node_side,
                        DdcStats* stats) const {
  ++stats->nodes;
  const int64_t k = node_side / 2;
  for (uint32_t mask = 0; mask < num_children_; ++mask) {
    if (!node->boxes[mask].present) continue;
    ++stats->boxes;
    if (dims_ > 1) stats->face_stores += dims_;
    if (k <= min_box_side_) {
      const MdArray<int64_t>* raw =
          node->child_raw != nullptr ? node->child_raw[mask] : nullptr;
      if (raw != nullptr) {
        ++stats->raw_blocks;
        stats->raw_cells += raw->size();
        raw->ForEach([&](const Cell&, const int64_t& v) {
          if (v != 0) ++stats->nonzero_cells;
        });
      }
    } else if (node->child_nodes != nullptr &&
               node->child_nodes[mask] != nullptr) {
      NodeStats(node->child_nodes[mask], k, stats);
    }
  }
}

void DdcCore::ForEachNonZero(
    const std::function<void(const Cell&, int64_t)>& fn) const {
  if (root_raw_ != nullptr) {
    root_raw_->ForEach([&](const Cell& cell, const int64_t& value) {
      if (value != 0) fn(cell, value);
    });
    return;
  }
  if (root_ == nullptr) return;
  NodeForEachNonZero(root_, side_, UniformCell(dims_, 0), fn);
}

void DdcCore::NodeForEachNonZero(
    const Node* node, int64_t node_side, const Cell& node_anchor,
    const std::function<void(const Cell&, int64_t)>& fn) const {
  const int64_t k = node_side / 2;
  for (uint32_t mask = 0; mask < num_children_; ++mask) {
    if (!node->boxes[mask].present) continue;
    Cell box_anchor = node_anchor;
    for (int i = 0; i < dims_; ++i) {
      if (mask & (1u << i)) box_anchor[static_cast<size_t>(i)] += k;
    }
    if (k <= min_box_side_) {
      const MdArray<int64_t>* raw =
          node->child_raw != nullptr ? node->child_raw[mask] : nullptr;
      if (raw == nullptr) continue;
      raw->ForEach([&](const Cell& cell, const int64_t& value) {
        if (value != 0) fn(CellAdd(box_anchor, cell), value);
      });
    } else if (node->child_nodes != nullptr &&
               node->child_nodes[mask] != nullptr) {
      NodeForEachNonZero(node->child_nodes[mask], k, box_anchor, fn);
    }
  }
}

}  // namespace ddc
