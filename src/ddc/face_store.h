// FaceStore: one group of overlay-box row-sum values, stored so that both
// reading a cumulative row sum and absorbing a point update cost polylog
// time (Section 4.2, "Storing Overlay Box Values Recursively").
//
// For a d-dimensional overlay box of side k, face j is conceptually the
// (d-1)-dimensional array F_j over the transverse coordinates y (every
// dimension except j, each in [0, k)):
//
//   F_j[y] = SUM( A[anchor .. anchor + (y with coordinate j set to k-1)] )
//
// i.e. the box-local prefix sums with dimension j fully extended. F_j is
// exactly the prefix-sum array of the line-sum array
// G_j[y] = SUM over the dimension-j line of the box at transverse position y,
// which is the "concordance with array P" observation of Section 4.2. A
// FaceStore therefore holds G_j in a structure with polylog prefix queries
// and point updates:
//
//   * d-1 == 1: a B_c tree (Section 4.1) or, for ablation, a Fenwick tree;
//   * d-1 >= 2: a nested (d-1)-dimensional Dynamic Data Cube.
//
// Reading a row-sum value is PrefixSum(y); updating A[anchor + off] is
// Add(transverse(off), delta): the line sum through the updated cell changes
// by delta.
//
// Layout: a FaceStore is a small non-virtual tagged handle (three pointers,
// trivially destructible) so the d faces of an overlay box can sit inline
// in one arena array next to the box's subtotal, and the common B_c-tree
// path pays no virtual dispatch. The pointed-to store lives in the same
// arena and dies with it.

#ifndef DDC_DDC_FACE_STORE_H_
#define DDC_DDC_FACE_STORE_H_

#include <cstdint>
#include <memory>

#include "common/arena.h"
#include "common/cell.h"
#include "common/md_array.h"
#include "common/op_counter.h"
#include "ddc/ddc_options.h"

namespace ddc {

class BcTree;
class DdcCore;
class FenwickTree;

class FaceStore {
 public:
  // An empty handle; Init() before use. Default-constructible so arrays of
  // faces can be carved out of an arena in one allocation.
  FaceStore() = default;

  // Initializes the store for a face with `transverse_dims` (= d-1)
  // dimensions of extent `side`. All backing memory comes from `arena`
  // (not owned; must outlive the store). `counters` routes cost accounting
  // to the owning cube; may be null.
  void Init(Arena* arena, int transverse_dims, int64_t side,
            const DdcOptions& options, OpCounters* counters);

  // Convenience for standalone stores (tests): a fresh store plus the arena
  // backing it.
  struct Owned {
    std::unique_ptr<Arena> arena;
    FaceStore* store = nullptr;  // Lives in *arena.
    FaceStore* operator->() { return store; }
    const FaceStore* operator->() const { return store; }
  };
  static Owned Create(int transverse_dims, int64_t side,
                      const DdcOptions& options, OpCounters* counters);

  // Adds `delta` to the line sum at transverse position `y` (d-1 coords,
  // each in [0, side)).
  void Add(const Cell& y, int64_t delta);

  // Returns F_j at `y`: the cumulative row sum over transverse prefix
  // [0 .. y].
  int64_t PrefixSum(const Cell& y) const;

  int64_t StorageCells() const;

  // Bulk-builds the store from the dense line-sum array G_j (shape: d-1
  // dimensions of extent `side`). The store must be empty. Used by the
  // bottom-up bulk loader.
  void BuildFromDense(const MdArray<int64_t>& line_sums);

 private:
  // Exactly one is set after Init: bc_ (1-D faces), fenwick_ (1-D ablation),
  // or nested_ (d-1 >= 2).
  BcTree* bc_ = nullptr;
  FenwickTree* fenwick_ = nullptr;
  DdcCore* nested_ = nullptr;
};

}  // namespace ddc

#endif  // DDC_DDC_FACE_STORE_H_
