// Tuning options for the Dynamic Data Cube.

#ifndef DDC_DDC_DDC_OPTIONS_H_
#define DDC_DDC_DDC_OPTIONS_H_

#include "bctree/bc_tree.h"

namespace ddc {

struct DdcOptions {
  // Fanout of the B_c trees storing one-dimensional row-sum groups
  // (Section 4.1).
  int bc_fanout = BcTree::kDefaultFanout;

  // Ablation: store one-dimensional row-sum groups in Fenwick trees instead
  // of B_c trees (same asymptotics, different constants/storage).
  bool use_fenwick = false;

  // When false, the cube does not record operation counters. Queries are
  // then strictly const (no mutable state touched), which ConcurrentCube
  // relies on to run readers in parallel under a shared lock.
  bool enable_counters = true;

  // The Section 4.4 space optimization: number of tree levels elided
  // immediately above the leaves. With elide_levels == h, the smallest
  // overlay boxes have side 2^(h+1) and the regions below them are stored as
  // raw arrays of A cells; queries may then have to sum up to 2^((h+1)*d)
  // adjacent leaf cells at the bottom of the descent. h == 0 reproduces the
  // full tree of Figure 9. The option propagates into nested (secondary)
  // DDCs.
  int elide_levels = 0;
};

}  // namespace ddc

#endif  // DDC_DDC_DDC_OPTIONS_H_
