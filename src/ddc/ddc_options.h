// Tuning options for the Dynamic Data Cube.

#ifndef DDC_DDC_DDC_OPTIONS_H_
#define DDC_DDC_DDC_OPTIONS_H_

#include "bctree/bc_tree.h"

namespace ddc {

struct DdcOptions {
  // Fanout of the B_c trees storing one-dimensional row-sum groups
  // (Section 4.1). The default (8) is tuned to the cache-line node budget:
  // 8 sums x 8 bytes fill exactly one 64-byte line, so one descent level is
  // one line, and the power-of-two fanout keeps child addressing shift/mask
  // (branchless). The bench_kernels fanout sweep on the reference host
  // measured (descent queries/sec, fanout-8 = 1.00x):
  //   cache-resident tree (capacity 32768, smoke mode):
  //     7 -> 0.65x (same line budget, but div/mod child addressing),
  //     8 -> 1.00x (one line per level, shift/mask),
  //    15 -> 0.45x (two lines per level and div/mod),
  //    16 -> 0.61x (shallower tree, but two line fills per level);
  //   out-of-cache tree (capacity 1<<20, full mode): 7 -> 0.93x,
  //    15 -> 0.98x, 16 -> 1.03x — once every level misses to DRAM the
  //    shallower fanout-16 tree ties fanout-8 within run noise, but never
  //    beats it beyond noise, and loses badly once any level caches.
  //   With -DDDC_NATIVE=ON (AVX2 MaskedPrefixSum8), fanout 8 widens its
  //   lead: 7 -> 0.30x, 15 -> 0.20x, 16 -> 0.42x (smoke host run).
  // Re-measure with bench_kernels when changing this.
  int bc_fanout = BcTree::kDefaultFanout;

  // Store 1-D row-sum groups in the dense Eytzinger/implicit-offset B_c
  // layout (one flat 64-byte-aligned slab, no child pointers; see
  // bc_tree.h). Fastest descents, but allocates the full conceptual tree up
  // front, so it forfeits the paper's sparse-subtree space behaviour —
  // leave off except for dense, bulk-built cubes.
  bool bc_dense = false;

  // Ablation: store one-dimensional row-sum groups in Fenwick trees instead
  // of B_c trees (same asymptotics, different constants/storage).
  bool use_fenwick = false;

  // When false, the cube does not record operation counters. Queries are
  // then strictly const (no mutable state touched), which ConcurrentCube
  // relies on to run readers in parallel under a shared lock.
  bool enable_counters = true;

  // The Section 4.4 space optimization: number of tree levels elided
  // immediately above the leaves. With elide_levels == h, the smallest
  // overlay boxes have side 2^(h+1) and the regions below them are stored as
  // raw arrays of A cells; queries may then have to sum up to 2^((h+1)*d)
  // adjacent leaf cells at the bottom of the descent. h == 0 reproduces the
  // full tree of Figure 9. The option propagates into nested (secondary)
  // DDCs.
  int elide_levels = 0;
};

}  // namespace ddc

#endif  // DDC_DDC_DDC_OPTIONS_H_
