// CategoryTree: hierarchical categorical dimensions with range-queryable
// rollups.
//
// Real dimensions are usually hierarchies (product -> category ->
// department; city -> state -> country). Assigning leaf categories ids in
// depth-first order makes every internal node own one *contiguous* id
// interval, so a rollup over any subtree is a single range predicate on the
// cube — no enumeration of leaves. The tree is declared up front and then
// finalized (ids must be stable before data is keyed by them); late
// AddPath calls after finalization are rejected.
//
// Paths are slash-separated ("electronics/phones/smartphone"); the empty
// path denotes the root (all leaves). Sibling order is lexicographic, so id
// assignment is deterministic for a given set of paths.

#ifndef DDC_OLAP_CATEGORY_TREE_H_
#define DDC_OLAP_CATEGORY_TREE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/cell.h"
#include "olap/dimension_encoder.h"

namespace ddc {

class CategoryTree {
 public:
  CategoryTree() = default;

  // Registers a leaf category. Ancestors are created implicitly. Must be
  // called before Finalize(); re-adding an existing path is a no-op.
  // A path that is a strict prefix of another becomes an internal node, not
  // a leaf.
  void AddPath(const std::string& path);

  // Freezes the tree and assigns depth-first leaf ids.
  void Finalize();
  bool finalized() const { return finalized_; }

  int64_t num_leaves() const { return num_leaves_; }

  // Id of a leaf category; the path must name a leaf. Finalized only.
  Coord LeafId(const std::string& path) const;

  // Inclusive id interval [first, second] of every leaf under `path`
  // ("" = all leaves). The path must exist. Finalized only.
  std::pair<Coord, Coord> Interval(const std::string& path) const;

  // Returns true when `path` names an existing node (leaf or internal).
  bool Contains(const std::string& path) const;

  // Names of the direct children of `path`, in id order.
  std::vector<std::string> ChildrenOf(const std::string& path) const;

  // Full path of the leaf with the given id. Finalized only.
  const std::string& LeafPath(Coord id) const;

 private:
  struct Node {
    std::map<std::string, std::unique_ptr<Node>> children;  // Sorted.
    Coord first_leaf = -1;
    Coord last_leaf = -1;
  };

  const Node* Find(const std::string& path) const;
  void AssignIds(Node* node, const std::string& path);

  Node root_;
  bool finalized_ = false;
  int64_t num_leaves_ = 0;
  std::vector<std::string> leaf_paths_;  // Indexed by leaf id.
};

// DimensionEncoder adapter: Encode takes a full leaf path; EncodeRange
// takes lo == hi naming *any* node and expands to its subtree interval —
// which is what makes "total sales for department X" one range query.
class HierarchicalDimension : public DimensionEncoder {
 public:
  // Takes ownership of a finalized tree (move it in).
  HierarchicalDimension(std::string name, CategoryTree tree);

  Coord Encode(const AttributeValue& value) override;
  std::pair<Coord, Coord> EncodeRange(const AttributeValue& lo,
                                      const AttributeValue& hi) override;
  std::string BinLabel(Coord index) const override;
  std::string name() const override { return name_; }

  const CategoryTree& tree() const { return tree_; }

 private:
  std::string name_;
  CategoryTree tree_;
};

}  // namespace ddc

#endif  // DDC_OLAP_CATEGORY_TREE_H_
