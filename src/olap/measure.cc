#include "olap/measure.h"

#include "common/check.h"

namespace ddc {

MeasureCube::MeasureCube(int dims, int64_t initial_side, DdcOptions options)
    : sum_(dims, initial_side, options), count_(dims, initial_side, options) {}

void MeasureCube::AddObservation(const Cell& cell, int64_t value) {
  sum_.Add(cell, value);
  count_.Add(cell, 1);
}

void MeasureCube::RemoveObservation(const Cell& cell, int64_t value) {
  sum_.Add(cell, -value);
  count_.Add(cell, -1);
}

void MeasureCube::AddObservationBatch(
    std::span<const Observation> observations) {
  if (observations.empty()) return;
  MutationBatch sums;
  MutationBatch counts;
  sums.reserve(observations.size());
  counts.reserve(observations.size());
  for (const Observation& o : observations) {
    sums.push_back(Mutation{o.cell, o.value, MutationKind::kAdd});
    counts.push_back(Mutation{o.cell, 1, MutationKind::kAdd});
  }
  sum_.ApplyBatch(sums);
  count_.ApplyBatch(counts);
}

int64_t MeasureCube::RangeSum(const Box& box) const {
  return sum_.RangeSum(box);
}

int64_t MeasureCube::RangeCount(const Box& box) const {
  return count_.RangeSum(box);
}

void MeasureCube::RangeSumBatch(std::span<const Box> boxes,
                                std::span<int64_t> out) const {
  sum_.RangeSumBatch(boxes, out);
}

void MeasureCube::RangeCountBatch(std::span<const Box> boxes,
                                  std::span<int64_t> out) const {
  count_.RangeSumBatch(boxes, out);
}

std::optional<double> MeasureCube::RangeAverage(const Box& box) const {
  const int64_t count = RangeCount(box);
  if (count == 0) return std::nullopt;
  return static_cast<double>(RangeSum(box)) / static_cast<double>(count);
}

std::vector<int64_t> MeasureCube::RollingSum(const Box& box, int dim,
                                             int64_t window) const {
  DDC_CHECK(dim >= 0 && dim < dims());
  DDC_CHECK(window >= 1);
  DDC_CHECK(!box.IsEmpty());
  std::vector<int64_t> out;
  const size_t ud = static_cast<size_t>(dim);
  out.reserve(static_cast<size_t>(box.hi[ud] - box.lo[ud] + 1));
  for (Coord pos = box.lo[ud]; pos <= box.hi[ud]; ++pos) {
    Box slice = box;
    slice.lo[ud] = pos - window + 1;
    slice.hi[ud] = pos;
    out.push_back(RangeSum(slice));
  }
  return out;
}

std::vector<std::optional<double>> MeasureCube::RollingAverage(
    const Box& box, int dim, int64_t window) const {
  DDC_CHECK(dim >= 0 && dim < dims());
  DDC_CHECK(window >= 1);
  DDC_CHECK(!box.IsEmpty());
  std::vector<std::optional<double>> out;
  const size_t ud = static_cast<size_t>(dim);
  out.reserve(static_cast<size_t>(box.hi[ud] - box.lo[ud] + 1));
  for (Coord pos = box.lo[ud]; pos <= box.hi[ud]; ++pos) {
    Box slice = box;
    slice.lo[ud] = pos - window + 1;
    slice.hi[ud] = pos;
    out.push_back(RangeAverage(slice));
  }
  return out;
}

}  // namespace ddc
