#include "olap/olap_cube.h"

#include <utility>

#include "common/check.h"

namespace ddc {

OlapCube::OlapCube(std::vector<std::unique_ptr<DimensionEncoder>> dimensions,
                   int64_t initial_side, DdcOptions options)
    : dimensions_(std::move(dimensions)),
      measure_(static_cast<int>(dimensions_.size()), initial_side, options) {
  DDC_CHECK(!dimensions_.empty());
}

Cell OlapCube::EncodeCell(const std::vector<AttributeValue>& values) {
  DDC_CHECK(values.size() == dimensions_.size());
  Cell cell(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    cell[i] = dimensions_[i]->Encode(values[i]);
  }
  return cell;
}

void OlapCube::Insert(const std::vector<AttributeValue>& values,
                      int64_t measure) {
  measure_.AddObservation(EncodeCell(values), measure);
}

void OlapCube::Remove(const std::vector<AttributeValue>& values,
                      int64_t measure) {
  measure_.RemoveObservation(EncodeCell(values), measure);
}

void OlapCube::InsertBatch(std::span<const OlapRecord> records) {
  if (records.empty()) return;
  std::vector<Observation> encoded;
  encoded.reserve(records.size());
  for (const OlapRecord& r : records) {
    encoded.push_back(Observation{EncodeCell(r.values), r.measure});
  }
  measure_.AddObservationBatch(encoded);
}

Box OlapCube::EncodeBox(const std::vector<AttributeRange>& ranges) {
  DDC_CHECK(ranges.size() == dimensions_.size());
  Box box{Cell(ranges.size()), Cell(ranges.size())};
  for (size_t i = 0; i < ranges.size(); ++i) {
    auto [lo, hi] = dimensions_[i]->EncodeRange(ranges[i].lo, ranges[i].hi);
    box.lo[i] = lo;
    box.hi[i] = hi;
  }
  return box;
}

int64_t OlapCube::RangeSum(const std::vector<AttributeRange>& ranges) {
  return measure_.RangeSum(EncodeBox(ranges));
}

int64_t OlapCube::RangeCount(const std::vector<AttributeRange>& ranges) {
  return measure_.RangeCount(EncodeBox(ranges));
}

std::optional<double> OlapCube::RangeAverage(
    const std::vector<AttributeRange>& ranges) {
  return measure_.RangeAverage(EncodeBox(ranges));
}

}  // namespace ddc
