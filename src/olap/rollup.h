// Roll-up / drill-down helpers: GROUP BY at a chosen granularity over one
// dimension, computed as one range query per group — the OLAP operations
// the paper's interactive-analysis motivation implies (e.g. daily sales
// rolled up to weeks, then months, then quarters).

#ifndef DDC_OLAP_ROLLUP_H_
#define DDC_OLAP_ROLLUP_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/cell.h"
#include "common/range.h"
#include "olap/measure.h"

namespace ddc {

// One aggregate row of a grouped query.
struct RollupRow {
  // First index of the group along the grouped dimension (groups are
  // aligned to multiples of group_size).
  Coord group_start;
  // Last index of the group (clipped to the queried box).
  Coord group_end;
  int64_t sum = 0;
  int64_t count = 0;

  std::optional<double> average() const {
    if (count == 0) return std::nullopt;
    return static_cast<double>(sum) / static_cast<double>(count);
  }
};

// Splits `box` along dimension `dim` into groups of `group_size`
// consecutive indices aligned to multiples of group_size (the first and
// last group may be partial), and returns one aggregate per group, in
// ascending order. Cost: O(#groups) range queries.
std::vector<RollupRow> GroupBy(const MeasureCube& cube, const Box& box,
                               int dim, int64_t group_size);

// Convenience: a full drill-down (one row per index along `dim`).
std::vector<RollupRow> DrillDown(const MeasureCube& cube, const Box& box,
                                 int dim);

// Successive roll-ups of the same box at each granularity in
// `group_sizes`, e.g. {7, 28, 84} for weekly/lunar-monthly/quarterly over
// a day dimension. Returns one report per granularity, in input order.
std::vector<std::vector<RollupRow>> RollupLadder(
    const MeasureCube& cube, const Box& box, int dim,
    const std::vector<int64_t>& group_sizes);

}  // namespace ddc

#endif  // DDC_OLAP_ROLLUP_H_
