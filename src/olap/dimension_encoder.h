// Dimension encoders: map attribute values of a functional attribute
// (dimension) to the dense integer indices the cube structures expect, and
// value ranges to index ranges.
//
// The paper's examples use numeric dimensions (CUSTOMER_AGE, DATE_AND_TIME,
// latitude/longitude) and implicitly categorical ones; both are supported.
// Numeric dimensions may be unbounded: indices can be negative or grow
// arbitrarily, which composes with the Dynamic Data Cube's growth in any
// direction.

#ifndef DDC_OLAP_DIMENSION_ENCODER_H_
#define DDC_OLAP_DIMENSION_ENCODER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <variant>
#include <vector>

#include "common/cell.h"

namespace ddc {

// A raw attribute value: numeric or categorical.
using AttributeValue = std::variant<double, std::string>;

class DimensionEncoder {
 public:
  virtual ~DimensionEncoder() = default;

  // Index of the bin containing `value`.
  virtual Coord Encode(const AttributeValue& value) = 0;

  // Index range [first, second] covering all values in [lo, hi].
  virtual std::pair<Coord, Coord> EncodeRange(const AttributeValue& lo,
                                              const AttributeValue& hi) = 0;

  // Human-readable label of a bin, for report output.
  virtual std::string BinLabel(Coord index) const = 0;

  virtual std::string name() const = 0;
};

// Numeric dimension: value v falls into bin floor((v - origin) / bin_width).
// Negative and unbounded indices are allowed.
class NumericDimension : public DimensionEncoder {
 public:
  NumericDimension(std::string name, double origin, double bin_width);

  Coord Encode(const AttributeValue& value) override;
  std::pair<Coord, Coord> EncodeRange(const AttributeValue& lo,
                                      const AttributeValue& hi) override;
  std::string BinLabel(Coord index) const override;
  std::string name() const override { return name_; }

 private:
  std::string name_;
  double origin_;
  double bin_width_;
};

// Categorical dimension: distinct values get dense indices in first-seen
// order. EncodeRange only supports lo == hi (a single category); categorical
// predicates over multiple categories should issue one query per category.
class CategoricalDimension : public DimensionEncoder {
 public:
  explicit CategoricalDimension(std::string name);

  Coord Encode(const AttributeValue& value) override;
  std::pair<Coord, Coord> EncodeRange(const AttributeValue& lo,
                                      const AttributeValue& hi) override;
  std::string BinLabel(Coord index) const override;
  std::string name() const override { return name_; }

  int64_t num_categories() const {
    return static_cast<int64_t>(labels_.size());
  }

 private:
  std::string name_;
  std::unordered_map<std::string, Coord> ids_;
  std::vector<std::string> labels_;
};

}  // namespace ddc

#endif  // DDC_OLAP_DIMENSION_ENCODER_H_
