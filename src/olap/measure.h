// MeasureCube: a measure attribute with the full family of invertible
// aggregates the paper lists — SUM, COUNT, AVERAGE, ROLLING SUM and ROLLING
// AVERAGE ("any binary operator + for which there exists an inverse binary
// operator -", Section 2).
//
// SUM and COUNT are maintained as two Dynamic Data Cubes over the same
// dimension space; AVERAGE is their quotient; the rolling variants slide a
// window of range queries along one dimension.

#ifndef DDC_OLAP_MEASURE_H_
#define DDC_OLAP_MEASURE_H_

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/cell.h"
#include "common/mutation.h"
#include "common/range.h"
#include "ddc/ddc_options.h"
#include "ddc/dynamic_data_cube.h"

namespace ddc {

// One encoded observation, the unit of batch ingest.
struct Observation {
  Cell cell;
  int64_t value;
};

class MeasureCube {
 public:
  MeasureCube(int dims, int64_t initial_side, DdcOptions options = {});

  int dims() const { return sum_.dims(); }

  // Records one observation: the measure contributes `value` at `cell`.
  void AddObservation(const Cell& cell, int64_t value);

  // Removes a previously recorded observation (the inverse operator).
  void RemoveObservation(const Cell& cell, int64_t value);

  // Batch ingest: two batched writes total — one ApplyBatch on the SUM cube
  // (each observation's value) and one on the COUNT cube (+1 each) — instead
  // of 2·N point updates. Repeated cells coalesce inside the shared-descent
  // apply. Results equal a loop of AddObservation.
  void AddObservationBatch(std::span<const Observation> observations);

  // Aggregates over a closed box.
  int64_t RangeSum(const Box& box) const;
  int64_t RangeCount(const Box& box) const;
  // Batched variants (one deduplicated corner descent per underlying cube;
  // see DynamicDataCube::RangeSumBatch). out.size() == boxes.size().
  void RangeSumBatch(std::span<const Box> boxes,
                     std::span<int64_t> out) const;
  void RangeCountBatch(std::span<const Box> boxes,
                       std::span<int64_t> out) const;
  // Empty ranges have no average.
  std::optional<double> RangeAverage(const Box& box) const;

  // Rolling aggregate along `dim`: for each window position p in
  // [box.lo[dim], box.hi[dim]], the aggregate over the box restricted to
  // dimension-dim range [p - window + 1, p] (a trailing window). Returns one
  // entry per position.
  std::vector<int64_t> RollingSum(const Box& box, int dim,
                                  int64_t window) const;
  std::vector<std::optional<double>> RollingAverage(const Box& box, int dim,
                                                    int64_t window) const;

  const DynamicDataCube& sum_cube() const { return sum_; }
  const DynamicDataCube& count_cube() const { return count_; }

 private:
  DynamicDataCube sum_;
  DynamicDataCube count_;
};

}  // namespace ddc

#endif  // DDC_OLAP_MEASURE_H_
