// OlapCube: the user-facing front end of the library.
//
// An OlapCube is configured with a list of dimension encoders and maintains
// a MeasureCube (SUM + COUNT over Dynamic Data Cubes) keyed by the encoded
// indices. Records are inserted one observation at a time — the dynamic
// update capability the paper argues is the enabling threshold — and range
// queries are posed in attribute space ("total sales to customers aged 27
// to 45 from day 220 to day 222").

#ifndef DDC_OLAP_OLAP_CUBE_H_
#define DDC_OLAP_OLAP_CUBE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/range.h"
#include "olap/dimension_encoder.h"
#include "olap/measure.h"

namespace ddc {

// A per-dimension query predicate: closed value range [lo, hi].
struct AttributeRange {
  AttributeValue lo;
  AttributeValue hi;
};

// One raw record for batch ingest: attribute values plus the measure.
struct OlapRecord {
  std::vector<AttributeValue> values;
  int64_t measure;
};

class OlapCube {
 public:
  // Takes ownership of the encoders; one per dimension, in order.
  OlapCube(std::vector<std::unique_ptr<DimensionEncoder>> dimensions,
           int64_t initial_side = 16, DdcOptions options = {});

  int dims() const { return static_cast<int>(dimensions_.size()); }

  const DimensionEncoder& dimension(int i) const {
    return *dimensions_[static_cast<size_t>(i)];
  }

  // Records one observation: `values` holds one attribute value per
  // dimension; `measure` is the measure attribute's value (scaled to an
  // integer by the caller, e.g. cents).
  void Insert(const std::vector<AttributeValue>& values, int64_t measure);

  // Removes a previously inserted observation.
  void Remove(const std::vector<AttributeValue>& values, int64_t measure);

  // Inserts a batch of records through the measure cube's batched write
  // path (two ApplyBatch calls total, not 2·N point updates). Equivalent
  // to a loop of Insert.
  void InsertBatch(std::span<const OlapRecord> records);

  // Translates per-dimension attribute ranges into an index box.
  Box EncodeBox(const std::vector<AttributeRange>& ranges);

  int64_t RangeSum(const std::vector<AttributeRange>& ranges);
  int64_t RangeCount(const std::vector<AttributeRange>& ranges);
  std::optional<double> RangeAverage(const std::vector<AttributeRange>& ranges);

  const MeasureCube& measure_cube() const { return measure_; }
  MeasureCube& measure_cube() { return measure_; }

 private:
  Cell EncodeCell(const std::vector<AttributeValue>& values);

  std::vector<std::unique_ptr<DimensionEncoder>> dimensions_;
  MeasureCube measure_;
};

}  // namespace ddc

#endif  // DDC_OLAP_OLAP_CUBE_H_
