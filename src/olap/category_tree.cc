#include "olap/category_tree.h"

#include <utility>

#include "common/check.h"

namespace ddc {

namespace {

std::vector<std::string> SplitPath(const std::string& path) {
  std::vector<std::string> segments;
  size_t start = 0;
  while (start <= path.size()) {
    const size_t slash = path.find('/', start);
    if (slash == std::string::npos) {
      if (start < path.size()) segments.push_back(path.substr(start));
      break;
    }
    if (slash > start) segments.push_back(path.substr(start, slash - start));
    start = slash + 1;
  }
  return segments;
}

}  // namespace

void CategoryTree::AddPath(const std::string& path) {
  DDC_CHECK(!finalized_);
  Node* node = &root_;
  for (const std::string& segment : SplitPath(path)) {
    auto [it, inserted] = node->children.emplace(segment, nullptr);
    if (inserted) it->second = std::make_unique<Node>();
    node = it->second.get();
  }
}

void CategoryTree::AssignIds(Node* node, const std::string& path) {
  if (node->children.empty()) {
    node->first_leaf = static_cast<Coord>(num_leaves_);
    node->last_leaf = node->first_leaf;
    leaf_paths_.push_back(path);
    ++num_leaves_;
    return;
  }
  node->first_leaf = static_cast<Coord>(num_leaves_);
  for (auto& [segment, child] : node->children) {
    AssignIds(child.get(), path.empty() ? segment : path + "/" + segment);
  }
  node->last_leaf = static_cast<Coord>(num_leaves_ - 1);
}

void CategoryTree::Finalize() {
  DDC_CHECK(!finalized_);
  DDC_CHECK(!root_.children.empty());  // At least one category.
  AssignIds(&root_, "");
  finalized_ = true;
}

const CategoryTree::Node* CategoryTree::Find(const std::string& path) const {
  const Node* node = &root_;
  for (const std::string& segment : SplitPath(path)) {
    auto it = node->children.find(segment);
    if (it == node->children.end()) return nullptr;
    node = it->second.get();
  }
  return node;
}

bool CategoryTree::Contains(const std::string& path) const {
  return Find(path) != nullptr;
}

Coord CategoryTree::LeafId(const std::string& path) const {
  DDC_CHECK(finalized_);
  const Node* node = Find(path);
  DDC_CHECK(node != nullptr);
  DDC_CHECK(node->children.empty());  // Must be a leaf.
  return node->first_leaf;
}

std::pair<Coord, Coord> CategoryTree::Interval(const std::string& path) const {
  DDC_CHECK(finalized_);
  const Node* node = Find(path);
  DDC_CHECK(node != nullptr);
  DDC_CHECK(node->first_leaf >= 0);  // Subtree contains at least one leaf.
  return {node->first_leaf, node->last_leaf};
}

std::vector<std::string> CategoryTree::ChildrenOf(
    const std::string& path) const {
  const Node* node = Find(path);
  DDC_CHECK(node != nullptr);
  std::vector<std::string> names;
  names.reserve(node->children.size());
  for (const auto& [segment, child] : node->children) {
    names.push_back(segment);
  }
  return names;
}

const std::string& CategoryTree::LeafPath(Coord id) const {
  DDC_CHECK(finalized_);
  DDC_CHECK(id >= 0 && id < num_leaves_);
  return leaf_paths_[static_cast<size_t>(id)];
}

HierarchicalDimension::HierarchicalDimension(std::string name,
                                             CategoryTree tree)
    : name_(std::move(name)), tree_(std::move(tree)) {
  DDC_CHECK(tree_.finalized());
}

Coord HierarchicalDimension::Encode(const AttributeValue& value) {
  DDC_CHECK(std::holds_alternative<std::string>(value));
  return tree_.LeafId(std::get<std::string>(value));
}

std::pair<Coord, Coord> HierarchicalDimension::EncodeRange(
    const AttributeValue& lo, const AttributeValue& hi) {
  DDC_CHECK(std::holds_alternative<std::string>(lo) &&
            std::holds_alternative<std::string>(hi));
  DDC_CHECK(std::get<std::string>(lo) == std::get<std::string>(hi));
  return tree_.Interval(std::get<std::string>(lo));
}

std::string HierarchicalDimension::BinLabel(Coord index) const {
  return tree_.LeafPath(index);
}

}  // namespace ddc
