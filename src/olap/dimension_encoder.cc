#include "olap/dimension_encoder.h"

#include <cmath>
#include <cstdio>

#include "common/check.h"

namespace ddc {

NumericDimension::NumericDimension(std::string name, double origin,
                                   double bin_width)
    : name_(std::move(name)), origin_(origin), bin_width_(bin_width) {
  DDC_CHECK(bin_width_ > 0.0);
}

Coord NumericDimension::Encode(const AttributeValue& value) {
  DDC_CHECK(std::holds_alternative<double>(value));
  const double v = std::get<double>(value);
  return static_cast<Coord>(std::floor((v - origin_) / bin_width_));
}

std::pair<Coord, Coord> NumericDimension::EncodeRange(
    const AttributeValue& lo, const AttributeValue& hi) {
  const Coord a = Encode(lo);
  const Coord b = Encode(hi);
  DDC_CHECK(a <= b);
  return {a, b};
}

std::string NumericDimension::BinLabel(Coord index) const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "[%g, %g)",
                origin_ + static_cast<double>(index) * bin_width_,
                origin_ + static_cast<double>(index + 1) * bin_width_);
  return buf;
}

CategoricalDimension::CategoricalDimension(std::string name)
    : name_(std::move(name)) {}

Coord CategoricalDimension::Encode(const AttributeValue& value) {
  DDC_CHECK(std::holds_alternative<std::string>(value));
  const std::string& label = std::get<std::string>(value);
  auto [it, inserted] =
      ids_.emplace(label, static_cast<Coord>(labels_.size()));
  if (inserted) labels_.push_back(label);
  return it->second;
}

std::pair<Coord, Coord> CategoricalDimension::EncodeRange(
    const AttributeValue& lo, const AttributeValue& hi) {
  DDC_CHECK(std::holds_alternative<std::string>(lo) &&
            std::holds_alternative<std::string>(hi));
  DDC_CHECK(std::get<std::string>(lo) == std::get<std::string>(hi));
  const Coord id = Encode(lo);
  return {id, id};
}

std::string CategoricalDimension::BinLabel(Coord index) const {
  DDC_CHECK(index >= 0 && index < num_categories());
  return labels_[static_cast<size_t>(index)];
}

}  // namespace ddc
