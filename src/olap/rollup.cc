#include "olap/rollup.h"

#include <algorithm>

#include "common/check.h"
#include "obs/trace.h"

namespace ddc {

namespace {

obs::Histogram& GroupByRowsHist() {
  static obs::Histogram& hist =
      *obs::MetricsRegistry::Default().GetHistogram("olap.groupby.rows");
  return hist;
}

// Floor division that rounds toward negative infinity (group alignment
// must be stable across negative coordinates).
Coord FloorDiv(Coord a, Coord b) {
  Coord q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

}  // namespace

std::vector<RollupRow> GroupBy(const MeasureCube& cube, const Box& box,
                               int dim, int64_t group_size) {
  DDC_CHECK(dim >= 0 && dim < cube.dims());
  DDC_CHECK(group_size >= 1);
  std::vector<RollupRow> rows;
  if (box.IsEmpty()) return rows;
  obs::TraceSpan span("olap.group_by", dim, group_size);
  const size_t ud = static_cast<size_t>(dim);

  // Materialize every group slice, then aggregate the whole report with two
  // batched range-sum calls. Adjacent slices share corner prefix sums
  // (next.lo - 1 == prev.hi along `dim`), which the batch deduplicates.
  std::vector<Box> slices;
  Coord group_start = FloorDiv(box.lo[ud], group_size) * group_size;
  while (group_start <= box.hi[ud]) {
    const Coord group_end = group_start + group_size - 1;
    Box slice = box;
    slice.lo[ud] = std::max(box.lo[ud], group_start);
    slice.hi[ud] = std::min(box.hi[ud], group_end);
    slices.push_back(std::move(slice));
    group_start = group_end + 1;
  }
  if (obs::Enabled()) {
    GroupByRowsHist().Record(static_cast<int64_t>(slices.size()));
  }
  std::vector<int64_t> sums(slices.size());
  std::vector<int64_t> counts(slices.size());
  cube.RangeSumBatch(slices, sums);
  cube.RangeCountBatch(slices, counts);
  rows.reserve(slices.size());
  for (size_t i = 0; i < slices.size(); ++i) {
    RollupRow row;
    row.group_start = slices[i].lo[ud];
    row.group_end = slices[i].hi[ud];
    row.sum = sums[i];
    row.count = counts[i];
    rows.push_back(row);
  }
  return rows;
}

std::vector<RollupRow> DrillDown(const MeasureCube& cube, const Box& box,
                                 int dim) {
  return GroupBy(cube, box, dim, 1);
}

std::vector<std::vector<RollupRow>> RollupLadder(
    const MeasureCube& cube, const Box& box, int dim,
    const std::vector<int64_t>& group_sizes) {
  std::vector<std::vector<RollupRow>> reports;
  reports.reserve(group_sizes.size());
  for (int64_t size : group_sizes) {
    reports.push_back(GroupBy(cube, box, dim, size));
  }
  return reports;
}

}  // namespace ddc
