#include "olap/rollup.h"

#include <algorithm>

#include "common/check.h"

namespace ddc {

namespace {

// Floor division that rounds toward negative infinity (group alignment
// must be stable across negative coordinates).
Coord FloorDiv(Coord a, Coord b) {
  Coord q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

}  // namespace

std::vector<RollupRow> GroupBy(const MeasureCube& cube, const Box& box,
                               int dim, int64_t group_size) {
  DDC_CHECK(dim >= 0 && dim < cube.dims());
  DDC_CHECK(group_size >= 1);
  std::vector<RollupRow> rows;
  if (box.IsEmpty()) return rows;
  const size_t ud = static_cast<size_t>(dim);

  Coord group_start = FloorDiv(box.lo[ud], group_size) * group_size;
  while (group_start <= box.hi[ud]) {
    const Coord group_end = group_start + group_size - 1;
    Box slice = box;
    slice.lo[ud] = std::max(box.lo[ud], group_start);
    slice.hi[ud] = std::min(box.hi[ud], group_end);
    RollupRow row;
    row.group_start = slice.lo[ud];
    row.group_end = slice.hi[ud];
    row.sum = cube.RangeSum(slice);
    row.count = cube.RangeCount(slice);
    rows.push_back(row);
    group_start = group_end + 1;
  }
  return rows;
}

std::vector<RollupRow> DrillDown(const MeasureCube& cube, const Box& box,
                                 int dim) {
  return GroupBy(cube, box, dim, 1);
}

std::vector<std::vector<RollupRow>> RollupLadder(
    const MeasureCube& cube, const Box& box, int dim,
    const std::vector<int64_t>& group_sizes) {
  std::vector<std::vector<RollupRow>> reports;
  reports.reserve(group_sizes.size());
  for (int64_t size : group_sizes) {
    reports.push_back(GroupBy(cube, box, dim, size));
  }
  return reports;
}

}  // namespace ddc
