#include "naive/naive_cube.h"

#include <utility>

#include "common/check.h"

namespace ddc {

NaiveCube::NaiveCube(Shape shape) : array_(std::move(shape)) {}

Cell NaiveCube::DomainLo() const {
  return UniformCell(array_.dims(), 0);
}

Cell NaiveCube::DomainHi() const {
  Cell hi(static_cast<size_t>(array_.dims()));
  for (int i = 0; i < array_.dims(); ++i) {
    hi[static_cast<size_t>(i)] = array_.shape().extent(i) - 1;
  }
  return hi;
}

void NaiveCube::Set(const Cell& cell, int64_t value) {
  array_.at(cell) = value;
  ++counters_.values_written;
}

void NaiveCube::Add(const Cell& cell, int64_t delta) {
  array_.at(cell) += delta;
  ++counters_.values_written;
}

int64_t NaiveCube::Get(const Cell& cell) const {
  ++counters_.values_read;
  return array_.at(cell);
}

int64_t NaiveCube::PrefixSum(const Cell& cell) const {
  DDC_CHECK(array_.shape().Contains(cell));
  return RangeSum(Box{DomainLo(), cell});
}

int64_t NaiveCube::RangeSum(const Box& box) const {
  const Box clipped = IntersectBoxes(box, Box{DomainLo(), DomainHi()});
  if (clipped.IsEmpty()) return 0;
  // Scan every cell of the region.
  int64_t sum = 0;
  Cell cursor = clipped.lo;
  while (true) {
    sum += array_.at(cursor);
    ++counters_.values_read;
    // Row-major advance within the clipped box.
    int dim = dims() - 1;
    while (dim >= 0) {
      size_t ud = static_cast<size_t>(dim);
      if (++cursor[ud] <= clipped.hi[ud]) break;
      cursor[ud] = clipped.lo[ud];
      --dim;
    }
    if (dim < 0) break;
  }
  return sum;
}

}  // namespace ddc
