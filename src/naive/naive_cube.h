// NaiveCube: the unadorned array A of Section 2.
//
// Queries scan every cell of the requested region (O(n^d) worst case);
// updates write one cell (O(1)). This is both the simplest baseline in the
// paper's comparison and the reference oracle for the integration tests.

#ifndef DDC_NAIVE_NAIVE_CUBE_H_
#define DDC_NAIVE_NAIVE_CUBE_H_

#include <cstdint>
#include <string>

#include "common/cube_interface.h"
#include "common/md_array.h"
#include "common/shape.h"

namespace ddc {

class NaiveCube : public CubeInterface {
 public:
  explicit NaiveCube(Shape shape);

  int dims() const override { return array_.dims(); }
  Cell DomainLo() const override;
  Cell DomainHi() const override;

  void Set(const Cell& cell, int64_t value) override;
  void Add(const Cell& cell, int64_t delta) override;
  int64_t Get(const Cell& cell) const override;
  int64_t PrefixSum(const Cell& cell) const override;
  int64_t RangeSum(const Box& box) const override;
  int64_t StorageCells() const override { return array_.size(); }
  std::string name() const override { return "naive"; }

  const MdArray<int64_t>& array() const { return array_; }

 private:
  MdArray<int64_t> array_;
};

}  // namespace ddc

#endif  // DDC_NAIVE_NAIVE_CUBE_H_
