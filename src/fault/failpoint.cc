#include "fault/failpoint.h"

#ifdef DDC_FAULTS_ENABLED

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace ddc {
namespace fault {
namespace {

// splitmix64: the same tiny deterministic stream the test harnesses use.
uint64_t SplitMix(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

struct Site {
  Trigger trigger;
  uint64_t hits = 0;      // evaluations while armed
  uint64_t triggers = 0;  // firings
  obs::Counter* mirror = nullptr;
};

struct Registry {
  std::mutex mutex;
  std::map<std::string, Site, std::less<>> sites;
  uint64_t rng = 0x9E3779B97F4A7C15ull;
  bool env_parsed = false;
};

Registry& GetRegistry() {
  static Registry* r = new Registry;  // never destroyed (exit-time sites)
  return *r;
}

// Count of armed sites; the Enabled() fast path. Updated under the mutex,
// read relaxed on every DDC_FAULTPOINT evaluation.
std::atomic<int> g_armed{0};

void RecountArmedLocked(Registry& r) {
  int armed = 0;
  for (const auto& [name, site] : r.sites) {
    if (site.trigger.mode != Trigger::kOff) ++armed;
  }
  g_armed.store(armed, std::memory_order_relaxed);
}

void ArmLocked(Registry& r, std::string_view site, Trigger trigger) {
  auto [it, inserted] = r.sites.try_emplace(std::string(site));
  it->second.trigger = trigger;
  if (it->second.mirror == nullptr) {
    it->second.mirror = obs::MetricsRegistry::Default().GetCounter(
        "fault." + it->first + ".triggers");
  }
  RecountArmedLocked(r);
}

bool ParseUint(std::string_view s, uint64_t* out) {
  if (s.empty()) return false;
  uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

bool ParseProb(std::string_view s, double* out) {
  if (s.empty()) return false;
  std::string buf(s);
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (end == nullptr || *end != '\0' || v < 0.0 || v > 1.0) return false;
  *out = v;
  return true;
}

// Parses one `<site>=<mode>:<arg>[:crash]` entry (or `seed=N`) and applies
// it under the registry lock.
bool ApplyEntryLocked(Registry& r, std::string_view entry,
                      std::string* error) {
  const size_t eq = entry.find('=');
  if (eq == std::string_view::npos || eq == 0) {
    if (error != nullptr) {
      *error = "faultpoint entry missing '=': '" + std::string(entry) + "'";
    }
    return false;
  }
  const std::string_view site = entry.substr(0, eq);
  std::string_view spec = entry.substr(eq + 1);
  if (site == "seed") {
    uint64_t seed = 0;
    if (!ParseUint(spec, &seed)) {
      if (error != nullptr) {
        *error = "bad seed value '" + std::string(spec) + "'";
      }
      return false;
    }
    r.rng = seed;
    return true;
  }

  bool crash = false;
  if (spec.size() >= 6 && spec.substr(spec.size() - 6) == ":crash") {
    crash = true;
    spec = spec.substr(0, spec.size() - 6);
  }
  const size_t colon = spec.find(':');
  const std::string_view mode = spec.substr(0, colon);
  const std::string_view arg =
      colon == std::string_view::npos ? std::string_view{}
                                      : spec.substr(colon + 1);
  Trigger t;
  uint64_t n = 0;
  double p = 0.0;
  if (mode == "off" && arg.empty()) {
    t = Trigger{};
    t.crash = crash;
  } else if (mode == "count" && ParseUint(arg, &n)) {
    t = Trigger::Count(n, crash);
  } else if (mode == "after" && ParseUint(arg, &n)) {
    t = Trigger::After(n, crash);
  } else if (mode == "every" && ParseUint(arg, &n) && n > 0) {
    t = Trigger::Every(n, crash);
  } else if (mode == "prob" && ParseProb(arg, &p)) {
    t = Trigger::Prob(p, crash);
  } else {
    if (error != nullptr) {
      *error = "bad trigger spec for site '" + std::string(site) + "': '" +
               std::string(spec) + "'";
    }
    return false;
  }
  ArmLocked(r, site, t);
  return true;
}

bool ArmFromSpecLocked(Registry& r, std::string_view spec,
                       std::string* error) {
  while (!spec.empty()) {
    const size_t semi = spec.find(';');
    const std::string_view entry =
        semi == std::string_view::npos ? spec : spec.substr(0, semi);
    spec = semi == std::string_view::npos ? std::string_view{}
                                          : spec.substr(semi + 1);
    if (entry.empty()) continue;
    if (!ApplyEntryLocked(r, entry, error)) return false;
  }
  return true;
}

// One-time DDC_FAULTPOINTS environment parse; malformed specs are loudly
// rejected (a harness that armed nothing by typo would silently test the
// happy path).
void ParseEnvLocked(Registry& r) {
  if (r.env_parsed) return;
  r.env_parsed = true;
  const char* env = std::getenv("DDC_FAULTPOINTS");
  if (env == nullptr || env[0] == '\0') return;
  std::string error;
  if (!ArmFromSpecLocked(r, env, &error)) {
    std::fprintf(stderr, "[fault] DDC_FAULTPOINTS rejected: %s\n",
                 error.c_str());
    std::fflush(stderr);
    std::abort();
  }
  std::fprintf(stderr, "[fault] armed from DDC_FAULTPOINTS: %s\n", env);
  std::fflush(stderr);
}

struct EnvInit {
  EnvInit() {
    Registry& r = GetRegistry();
    std::lock_guard<std::mutex> lock(r.mutex);
    ParseEnvLocked(r);
  }
};

}  // namespace

bool Enabled() {
  // The env spec must be able to arm sites before the first evaluation even
  // if no code called Arm explicitly; a function-local static keeps the
  // parse out of static-init order trouble.
  static EnvInit env_init;
  (void)env_init;
  return g_armed.load(std::memory_order_relaxed) > 0;
}

void Arm(std::string_view site, Trigger trigger) {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mutex);
  ArmLocked(r, site, trigger);
}

void Disarm(std::string_view site) {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mutex);
  auto it = r.sites.find(site);
  if (it != r.sites.end()) it->second.trigger = Trigger{};
  RecountArmedLocked(r);
}

void DisarmAll() {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mutex);
  for (auto& [name, site] : r.sites) {
    site.trigger = Trigger{};
    site.hits = 0;
    site.triggers = 0;
  }
  RecountArmedLocked(r);
}

void SetSeed(uint64_t seed) {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.rng = seed;
}

bool ArmFromSpec(std::string_view spec, std::string* error) {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mutex);
  return ArmFromSpecLocked(r, spec, error);
}

uint64_t Hits(std::string_view site) {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mutex);
  auto it = r.sites.find(site);
  return it == r.sites.end() ? 0 : it->second.hits;
}

uint64_t Triggers(std::string_view site) {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mutex);
  auto it = r.sites.find(site);
  return it == r.sites.end() ? 0 : it->second.triggers;
}

uint64_t RandBelow(uint64_t n) {
  if (n == 0) return 0;
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mutex);
  return SplitMix(&r.rng) % n;
}

void RaiseAllocFailure(const char* site) { throw AllocFailure{site}; }

namespace internal {

bool Evaluate(std::string_view site) {
  Registry& r = GetRegistry();
  bool fire = false;
  bool crash = false;
  uint64_t trigger_no = 0;
  {
    std::lock_guard<std::mutex> lock(r.mutex);
    auto it = r.sites.find(site);
    if (it == r.sites.end()) return false;
    Site& s = it->second;
    Trigger& t = s.trigger;
    if (t.mode == Trigger::kOff) return false;
    s.hits++;
    switch (t.mode) {
      case Trigger::kOff:
        break;
      case Trigger::kCount:
        if (t.n > 0) {
          fire = true;
          if (--t.n == 0) {
            t.mode = Trigger::kOff;
            RecountArmedLocked(r);
          }
        }
        break;
      case Trigger::kAfter:
        if (t.n > 0) {
          --t.n;
        } else {
          fire = true;
        }
        break;
      case Trigger::kEvery:
        fire = (s.hits % t.n) == 0;
        break;
      case Trigger::kProb: {
        const double draw =
            static_cast<double>(SplitMix(&r.rng) >> 11) * 0x1.0p-53;
        fire = draw < t.p;
        break;
      }
    }
    if (fire) {
      s.triggers++;
      trigger_no = s.triggers;
      crash = t.crash;
      if (s.mirror != nullptr && obs::Enabled()) s.mirror->Increment();
    }
  }
  if (fire && crash) {
    // The crashloop protocol: announce the kill point, then die without
    // running atexit handlers or flushing buffered streams — the closest
    // in-process stand-in for SIGKILL mid-syscall.
    std::fprintf(stderr, "[fault] %.*s fired (trigger %llu): crashing\n",
                 static_cast<int>(site.size()), site.data(),
                 static_cast<unsigned long long>(trigger_no));
    std::fflush(stderr);
    // Post-mortem visibility: dump the flight recorder ring (annotated with
    // this crash site) to $DDC_FLIGHTREC_DUMP before dying, so crashloop.sh
    // can assert what the process was doing when the fault fired.
    obs::FlightRecorderCrashDump(site.data(), site.size());
    _exit(kCrashExitCode);
  }
  return fire;
}

}  // namespace internal
}  // namespace fault
}  // namespace ddc

#else  // !DDC_FAULTS_ENABLED

// Keep the translation unit non-empty in the compiled-out configuration.
namespace ddc {
namespace fault {
namespace internal {
void FailpointCompiledOut() {}
}  // namespace internal
}  // namespace fault
}  // namespace ddc

#endif  // DDC_FAULTS_ENABLED
