// Deterministic fault injection: a process-wide registry of named failpoint
// sites that test harnesses arm to make I/O and memory misbehave on purpose.
//
// Design constraints, mirroring obs/metrics.h:
//   1. Zero cost when compiled out: the default build (-DDDC_FAULTS=OFF)
//      turns DDC_FAULTPOINT(site) into a literal `false`, so every guarded
//      branch folds away and the production libraries carry no undefined
//      references into this library (tools/check_faults_off.sh proves it).
//   2. Deterministic when on: every probabilistic decision draws from one
//      seeded splitmix64 stream under the registry mutex, so a single-
//      threaded workload replays bit-identically from (seed, arm spec).
//      Multi-threaded workloads are serialized per draw (valid, not
//      bit-reproducible across schedules).
//   3. Observable: each trigger bumps a per-site counter that is mirrored
//      into the metrics registry as `fault.<site>.triggers` when obs is on.
//
// Site naming follows the metric convention: dotted lower_snake segments,
// `layer.object.failure` — e.g. wal.write.short, arena.alloc.fail. See
// DESIGN.md §11 for the full catalogue and the spec grammar.
//
// Arming is programmatic (Arm/ArmFromSpec) or via the DDC_FAULTPOINTS
// environment variable, parsed on first use:
//
//   DDC_FAULTPOINTS="seed=42;wal.write.short=count:3;wal.sync.fail=prob:0.1:crash"
//
// Entries are ';'-separated. `seed=N` seeds the RNG; every other entry is
// `<site>=<mode>:<arg>[:crash]` where mode is one of
//   count:N   fire on the next N evaluations, then disarm
//   after:N   skip N evaluations, then fire on every one
//   every:K   fire on every K-th evaluation (1-based)
//   prob:P    fire each evaluation with probability P in [0,1]
//   off       registered but never fires (placeholder)
// and the optional `:crash` suffix makes a firing site _exit(kCrashExitCode)
// instead of returning true — the hook tools/crashloop.sh uses to kill
// ddctool mid-commit.

#ifndef DDC_FAULT_FAILPOINT_H_
#define DDC_FAULT_FAILPOINT_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace ddc {
namespace fault {

// Exit code a `:crash`-armed site terminates the process with. Chosen to be
// distinguishable from test-framework and shell failure codes; crashloop.sh
// treats exactly this code as "injected crash, restart and recover".
inline constexpr int kCrashExitCode = 87;

// Thrown by arena.alloc.fail (via RaiseAllocFailure) to model allocation
// failure as a recoverable error instead of an abort. The codebase is
// otherwise exception-free: this type exists only on injected-fault paths,
// and a cube that threw must be discarded (its in-memory state may hold a
// partially applied batch; durable state is unaffected).
struct AllocFailure {
  const char* site;
};

struct Trigger {
  enum Mode { kOff, kCount, kAfter, kEvery, kProb };
  Mode mode = kOff;
  // kCount: remaining firings. kAfter: evaluations to skip. kEvery: period.
  uint64_t n = 0;
  double p = 0.0;  // kProb only
  bool crash = false;

  static Trigger Count(uint64_t n, bool crash = false) {
    return Trigger{kCount, n, 0.0, crash};
  }
  static Trigger After(uint64_t n, bool crash = false) {
    return Trigger{kAfter, n, 0.0, crash};
  }
  static Trigger Every(uint64_t k, bool crash = false) {
    return Trigger{kEvery, k, 0.0, crash};
  }
  static Trigger Prob(double p, bool crash = false) {
    return Trigger{kProb, 0, p, crash};
  }
};

#ifdef DDC_FAULTS_ENABLED

// Compile-time on. Enabled() is the hot-path guard: one relaxed atomic load
// of the armed-site count, true only while at least one site is armed.
constexpr bool Compiled() { return true; }
bool Enabled();

// Arm `site` with the given trigger (replaces any existing trigger). Sites
// are created on first Arm; evaluating a never-armed site is a no-op.
void Arm(std::string_view site, Trigger trigger);
void Disarm(std::string_view site);
// Disarms every site and clears hit/trigger counters. Harnesses call this
// between simulated process lifetimes.
void DisarmAll();

// Seeds the shared RNG stream (kProb draws, RandBelow). Deterministic
// replay = same seed + same arm spec + same evaluation order.
void SetSeed(uint64_t seed);

// Parses a DDC_FAULTPOINTS-grammar spec and arms everything in it. Returns
// false (with *error set) on a malformed spec; valid prefix entries before
// the bad one stay armed.
bool ArmFromSpec(std::string_view spec, std::string* error);

// Counters: evaluations of an armed site / firings. Unarmed sites report 0.
uint64_t Hits(std::string_view site);
uint64_t Triggers(std::string_view site);

// Uniform draw in [0, n) from the registry RNG (n == 0 returns 0). Fault
// sites use it to pick tear offsets and delays so those choices replay too.
uint64_t RandBelow(uint64_t n);

// Throws AllocFailure{site}. Out-of-line so call sites stay branch + call.
[[noreturn]] void RaiseAllocFailure(const char* site);

namespace internal {
// True if `site` is armed and its trigger fires for this evaluation. Crash
// triggers never return: they flush stderr and _exit(kCrashExitCode).
bool Evaluate(std::string_view site);
}  // namespace internal

// The site macro: `if (DDC_FAULTPOINT("wal.sync.fail")) { ...fail... }`.
// One relaxed load when nothing is armed; full evaluation only while a
// harness has armed at least one site.
#define DDC_FAULTPOINT(site) \
  (::ddc::fault::Enabled() && ::ddc::fault::internal::Evaluate(site))

#else  // !DDC_FAULTS_ENABLED

// Compile-time off: the macro is a literal false, the API is inert, and no
// symbol from this library is referenced by guarded call sites.
constexpr bool Compiled() { return false; }
constexpr bool Enabled() { return false; }

inline void Arm(std::string_view, Trigger) {}
inline void Disarm(std::string_view) {}
inline void DisarmAll() {}
inline void SetSeed(uint64_t) {}
inline bool ArmFromSpec(std::string_view, std::string* error) {
  if (error != nullptr) error->clear();
  return true;
}
inline uint64_t Hits(std::string_view) { return 0; }
inline uint64_t Triggers(std::string_view) { return 0; }
inline uint64_t RandBelow(uint64_t) { return 0; }
// Inline so guarded-out call sites never create a reference into the fault
// library; unreachable in this configuration (the guard is literal false).
[[noreturn]] inline void RaiseAllocFailure(const char*) { __builtin_trap(); }

#define DDC_FAULTPOINT(site) false

#endif  // DDC_FAULTS_ENABLED

}  // namespace fault
}  // namespace ddc

#endif  // DDC_FAULT_FAILPOINT_H_
