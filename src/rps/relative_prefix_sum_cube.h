// RelativePrefixSumCube: the relative prefix sum method of Geffner, Agrawal,
// El Abbadi and Smith (GAES99), the paper's second baseline: O(1) queries
// (2^d reads for fixed d) and O(n^{d/2}) worst-case updates.
//
// Construction: each dimension i is split into blocks of side
// k_i = ceil(sqrt(n_i)). The global prefix sum of a cell c decomposes, per
// dimension, into "everything before c's block" and "inside c's block":
//
//   P(c) = sum over subsets S of dimensions of R_S(c)
//   R_S(c) = SUM over { dims in S: [0, blockAnchor_i - 1],
//                       dims not in S: [blockAnchor_i, c_i] }
//
// The S = {} term is the block-local relative prefix RP[c]; every nonempty S
// has its own table T_S indexed by block number in the S dimensions and by
// global coordinate in the others. A query reads exactly one entry per
// subset (2^d reads); an update at u touches
//   prod_{i in S} (#blocks after u) * prod_{i not in S} (#cells >= u in block)
// entries of T_S, which sums to (n/k + k)^d = O(n^{d/2}) with k = sqrt(n) —
// the constrained cascade that distinguishes RPS from the unconstrained
// prefix-sum cascade.
//
// This block scheme is complexity-equivalent to the GAES99 overlay layout
// (see DESIGN.md, "Substitutions"): same query cost, same update cascade
// envelope, same externally observable behaviour.

#ifndef DDC_RPS_RELATIVE_PREFIX_SUM_CUBE_H_
#define DDC_RPS_RELATIVE_PREFIX_SUM_CUBE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/cube_interface.h"
#include "common/md_array.h"
#include "common/shape.h"

namespace ddc {

class RelativePrefixSumCube : public CubeInterface {
 public:
  // `block_side` overrides the default k_i = ceil(sqrt(n_i)) when positive
  // (used by tests and ablation benches).
  explicit RelativePrefixSumCube(Shape shape, int64_t block_side = 0);

  // Bulk build: computes every table entry directly from the global prefix
  // array of `array` (O(2^d) per stored cell after one O(d n^d) sweep)
  // instead of paying the cascading update per cell.
  static RelativePrefixSumCube FromArray(const MdArray<int64_t>& array,
                                         int64_t block_side = 0);

  int dims() const override { return shape_.dims(); }
  Cell DomainLo() const override;
  Cell DomainHi() const override;

  void Set(const Cell& cell, int64_t value) override;
  void Add(const Cell& cell, int64_t delta) override;
  int64_t Get(const Cell& cell) const override;
  int64_t PrefixSum(const Cell& cell) const override;
  int64_t StorageCells() const override;
  std::string name() const override { return "relative_prefix_sum"; }

  int64_t block_side(int dim) const {
    return block_side_[static_cast<size_t>(dim)];
  }

 private:
  int64_t BlockOf(int dim, Coord coord) const {
    return coord / block_side_[static_cast<size_t>(dim)];
  }
  Coord BlockAnchor(int dim, Coord coord) const {
    return (coord / block_side_[static_cast<size_t>(dim)]) *
           block_side_[static_cast<size_t>(dim)];
  }

  Shape shape_;
  std::vector<int64_t> block_side_;   // k_i per dimension
  std::vector<int64_t> num_blocks_;   // ceil(n_i / k_i)
  MdArray<int64_t> rp_;               // block-local prefix sums (S = {})
  // tables_[mask - 1] is T_S for the nonempty subset encoded by `mask`.
  std::vector<MdArray<int64_t>> tables_;
};

}  // namespace ddc

#endif  // DDC_RPS_RELATIVE_PREFIX_SUM_CUBE_H_
