#include "rps/relative_prefix_sum_cube.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"

namespace ddc {

RelativePrefixSumCube::RelativePrefixSumCube(Shape shape, int64_t block_side)
    : shape_(std::move(shape)), rp_(shape_) {
  const int d = shape_.dims();
  block_side_.resize(static_cast<size_t>(d));
  num_blocks_.resize(static_cast<size_t>(d));
  for (int i = 0; i < d; ++i) {
    const int64_t n = shape_.extent(i);
    int64_t k = block_side;
    if (k <= 0) {
      k = static_cast<int64_t>(std::ceil(std::sqrt(static_cast<double>(n))));
    }
    k = std::min(k, n);
    block_side_[static_cast<size_t>(i)] = k;
    num_blocks_[static_cast<size_t>(i)] = (n + k - 1) / k;
  }

  const uint32_t num_subsets = 1u << d;
  tables_.reserve(num_subsets - 1);
  for (uint32_t mask = 1; mask < num_subsets; ++mask) {
    std::vector<Coord> extents(static_cast<size_t>(d));
    for (int i = 0; i < d; ++i) {
      extents[static_cast<size_t>(i)] = (mask & (1u << i))
                                            ? num_blocks_[static_cast<size_t>(i)]
                                            : shape_.extent(i);
    }
    tables_.emplace_back(Shape(std::move(extents)));
  }
}

RelativePrefixSumCube RelativePrefixSumCube::FromArray(
    const MdArray<int64_t>& array, int64_t block_side) {
  RelativePrefixSumCube cube(array.shape(), block_side);
  const Shape& shape = array.shape();
  const int d = shape.dims();

  // Global prefix array P by the standard per-dimension sweep.
  MdArray<int64_t> p(shape);
  for (int64_t i = 0; i < array.size(); ++i) {
    p.at_linear(i) = array.at_linear(i);
  }
  for (int dim = 0; dim < d; ++dim) {
    Cell cell(static_cast<size_t>(d), 0);
    do {
      if (cell[static_cast<size_t>(dim)] == 0) continue;
      Cell prev = cell;
      --prev[static_cast<size_t>(dim)];
      p.at(cell) += p.at(prev);
    } while (shape.NextCell(&cell));
  }
  const Cell anchor = UniformCell(d, 0);
  auto region_sum = [&](const Box& box) {
    return RangeSumFromPrefix(box, anchor,
                              [&](const Cell& c) { return p.at(c); });
  };

  // RP: block-local prefixes.
  {
    Cell cell(static_cast<size_t>(d), 0);
    do {
      Box region{Cell(static_cast<size_t>(d)), cell};
      for (int i = 0; i < d; ++i) {
        region.lo[static_cast<size_t>(i)] =
            cube.BlockAnchor(i, cell[static_cast<size_t>(i)]);
      }
      cube.rp_.at(cell) = region_sum(region);
    } while (shape.NextCell(&cell));
  }

  // Border tables T_S.
  const uint32_t num_subsets = 1u << d;
  for (uint32_t mask = 1; mask < num_subsets; ++mask) {
    MdArray<int64_t>& table = cube.tables_[mask - 1];
    const Shape& tshape = table.shape();
    Cell index(static_cast<size_t>(d), 0);
    do {
      Box region{Cell(static_cast<size_t>(d)), Cell(static_cast<size_t>(d))};
      for (int i = 0; i < d; ++i) {
        size_t ui = static_cast<size_t>(i);
        if (mask & (1u << i)) {
          // Blocks 0..index_i complete (clipped to the domain).
          region.lo[ui] = 0;
          region.hi[ui] = std::min<Coord>(
              shape.extent(i) - 1,
              (index[ui] + 1) * cube.block_side_[ui] - 1);
        } else {
          region.lo[ui] = cube.BlockAnchor(i, index[ui]);
          region.hi[ui] = index[ui];
        }
      }
      table.at(index) = region_sum(region);
    } while (tshape.NextCell(&index));
  }
  return cube;
}

Cell RelativePrefixSumCube::DomainLo() const {
  return UniformCell(shape_.dims(), 0);
}

Cell RelativePrefixSumCube::DomainHi() const {
  Cell hi(static_cast<size_t>(shape_.dims()));
  for (int i = 0; i < shape_.dims(); ++i) {
    hi[static_cast<size_t>(i)] = shape_.extent(i) - 1;
  }
  return hi;
}

int64_t RelativePrefixSumCube::Get(const Cell& cell) const {
  return RangeSum(Box{cell, cell});
}

void RelativePrefixSumCube::Set(const Cell& cell, int64_t value) {
  Add(cell, value - Get(cell));
}

void RelativePrefixSumCube::Add(const Cell& cell, int64_t delta) {
  DDC_CHECK(shape_.Contains(cell));
  if (delta == 0) return;
  const int d = shape_.dims();

  // 1. Block-local prefixes: every RP cell in the same block dominated by
  //    `cell` contains it.
  {
    Box region{cell, cell};
    for (int i = 0; i < d; ++i) {
      size_t ui = static_cast<size_t>(i);
      region.hi[ui] = std::min<Coord>(
          shape_.extent(i) - 1,
          BlockAnchor(i, cell[ui]) + block_side_[ui] - 1);
    }
    Cell cursor = region.lo;
    while (true) {
      rp_.at(cursor) += delta;
      ++counters_.values_written;
      int dim = d - 1;
      while (dim >= 0) {
        size_t ud = static_cast<size_t>(dim);
        if (++cursor[ud] <= region.hi[ud]) break;
        cursor[ud] = region.lo[ud];
        --dim;
      }
      if (dim < 0) break;
    }
  }

  // 2. Border tables: T_S[y] covers `cell` when, in each S dimension, y's
  //    block is at or after cell's block (complete-blocks region reaches
  //    past the cell)... more precisely strictly after is wrong: T_S[y]
  //    covers blocks 0..y_i completely, so it contains cell iff
  //    y_i >= block(cell_i); in each non-S dimension y must be in the same
  //    block with y_i >= cell_i.
  const uint32_t num_subsets = 1u << d;
  for (uint32_t mask = 1; mask < num_subsets; ++mask) {
    MdArray<int64_t>& table = tables_[mask - 1];
    Box region{Cell(static_cast<size_t>(d)), Cell(static_cast<size_t>(d))};
    bool empty = false;
    for (int i = 0; i < d; ++i) {
      size_t ui = static_cast<size_t>(i);
      if (mask & (1u << i)) {
        region.lo[ui] = BlockOf(i, cell[ui]);
        region.hi[ui] = num_blocks_[ui] - 1;
      } else {
        region.lo[ui] = cell[ui];
        region.hi[ui] = std::min<Coord>(
            shape_.extent(i) - 1,
            BlockAnchor(i, cell[ui]) + block_side_[ui] - 1);
      }
      if (region.lo[ui] > region.hi[ui]) empty = true;
    }
    if (empty) continue;
    Cell cursor = region.lo;
    while (true) {
      table.at(cursor) += delta;
      ++counters_.values_written;
      int dim = d - 1;
      while (dim >= 0) {
        size_t ud = static_cast<size_t>(dim);
        if (++cursor[ud] <= region.hi[ud]) break;
        cursor[ud] = region.lo[ud];
        --dim;
      }
      if (dim < 0) break;
    }
  }
}

int64_t RelativePrefixSumCube::PrefixSum(const Cell& cell) const {
  DDC_CHECK(shape_.Contains(cell));
  const int d = shape_.dims();
  // S = {}: the block-local relative prefix.
  int64_t sum = rp_.at(cell);
  ++counters_.values_read;

  const uint32_t num_subsets = 1u << d;
  Cell index(static_cast<size_t>(d));
  for (uint32_t mask = 1; mask < num_subsets; ++mask) {
    bool zero_term = false;
    for (int i = 0; i < d; ++i) {
      size_t ui = static_cast<size_t>(i);
      if (mask & (1u << i)) {
        const int64_t block = BlockOf(i, cell[ui]);
        if (block == 0) {
          zero_term = true;  // No complete blocks before the cell's block.
          break;
        }
        index[ui] = block - 1;
      } else {
        index[ui] = cell[ui];
      }
    }
    if (zero_term) continue;
    sum += tables_[mask - 1].at(index);
    ++counters_.values_read;
  }
  return sum;
}

int64_t RelativePrefixSumCube::StorageCells() const {
  int64_t total = rp_.size();
  for (const auto& table : tables_) total += table.size();
  return total;
}

}  // namespace ddc
