// Trace spans: RAII timing records feeding fixed-capacity per-thread ring
// buffers, merged at dump time.
//
// Lifecycle: a TraceSpan stamps the start time at construction (only when
// obs::Enabled(); a disabled span is fully inert) and appends one TraceEvent
// to the calling thread's ring buffer at destruction. Each thread's ring is
// created lazily on first use, registered in a process-wide list, and kept
// alive past thread exit so a merge after join still sees every event. A
// ring holds the most recent kCapacity events; older ones are overwritten —
// tracing is a flight recorder, not a log.
//
// Concurrency: a ring is appended to only by its owning thread; append and
// drain synchronize on a per-ring mutex that is uncontended in steady state
// (the owner thread is the only toucher until somebody dumps), so recording
// stays cheap and the merge path is exact after writers quiesce.

#ifndef DDC_OBS_TRACE_H_
#define DDC_OBS_TRACE_H_

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "obs/metrics.h"

namespace ddc {
namespace obs {

struct TraceEvent {
  const char* name;   // Static string (literal); not owned.
  uint64_t start_ns;  // NowNanos() at span construction.
  uint64_t end_ns;    // NowNanos() at span destruction.
  uint32_t tid;       // Small sequential id of the recording thread.
  int64_t arg0;       // Two span-tagged payload integers (batch sizes,
  int64_t arg1;       // shard counts, ...; 0 when unused).
};

// Events each thread's ring retains before overwriting the oldest.
size_t TraceCapacityPerThread();

// RAII span. `name` must outlive the program (pass a string literal). An
// optional histogram additionally receives the span's duration in ns, so a
// site can feed the metrics registry and the flight recorder with one probe.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, int64_t arg0 = 0, int64_t arg1 = 0,
                     Histogram* latency_hist = nullptr)
      : name_(name),
        arg0_(arg0),
        arg1_(arg1),
        latency_hist_(latency_hist),
        active_(Enabled()),
        start_ns_(active_ ? NowNanos() : 0) {}
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  // Args may be filled in after construction (e.g. once a result size is
  // known); they are captured at destruction time.
  void set_arg0(int64_t v) { arg0_ = v; }
  void set_arg1(int64_t v) { arg1_ = v; }

 private:
  const char* name_;
  int64_t arg0_;
  int64_t arg1_;
  Histogram* latency_hist_;
  bool active_;
  uint64_t start_ns_;
};

// Merges every thread's ring into `out`, ordered by start_ns. Events stay in
// their rings (dumping is repeatable); exact once recording threads quiesce.
void DrainTrace(std::vector<TraceEvent>* out);

// Clears every ring (rings stay registered to their threads), including the
// per-ring dropped counts.
void ResetTrace();

// Events overwritten by ring wrap-around since the last ResetTrace, summed
// over all thread rings. Also mirrored into the `trace.dropped` registry
// counter and exported as "ph":"C" counter events in RenderTraceJson.
uint64_t TraceDroppedTotal();

// Chrome-trace-viewer-compatible JSON array of complete ("ph":"X") events.
void RenderTraceJson(std::ostream& os);

}  // namespace obs
}  // namespace ddc

#endif  // DDC_OBS_TRACE_H_
