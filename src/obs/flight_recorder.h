// FlightRecorder: a fixed-size lock-free ring of the most recent annotated
// operations, for post-mortem "what was the system doing?" visibility.
//
// Every executed statement (and ddctool faultrun batch) appends one
// FlightRecord — statement hash, cost-ledger summary, timestamp, thread —
// with a single fetch_add on the ring head plus a plain slot store. There
// are no locks and no allocation: a dump taken while writers are running
// may observe a torn slot at the wrap boundary (documented, acceptable for
// a diagnostic ring; records carry their sequence number so a torn slot is
// detectable as a seq mismatch).
//
// Dumps: RenderJson for `ddctool flightrec`, and an async-signal-safe
// DumpToFd path (snprintf into a stack buffer + write(2)) used both by the
// DDC_FAULTPOINT crash branch and by the fatal-signal handlers, writing to
// the file named by $DDC_FLIGHTREC_DUMP. The PR 5 crashloop harness asserts
// that dump exists and parses after an injected crash.
//
// The class always compiles; recording sites are guarded by obs::Enabled(),
// so the -DDDC_OBS=OFF build carries an empty ring at zero hot-path cost.

#ifndef DDC_OBS_FLIGHT_RECORDER_H_
#define DDC_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <vector>

namespace ddc {
namespace obs {

struct FlightRecord {
  uint64_t seq = 0;    // Assigned by Record(); monotone per recorder.
  uint64_t ts_ns = 0;  // NowNanos() when recorded.
  uint32_t tid = 0;    // Small sequential thread id (FlightThreadId()).
  uint32_t kind = 0;   // FlightRecorder::k{Read,Write,Explain,Batch}.
  uint64_t statement_hash = 0;  // FNV-1a of the statement text.
  int64_t nodes_visited = 0;
  int64_t values_read = 0;
  int64_t values_written = 0;
  int64_t corner_terms = 0;
  int64_t duration_ns = 0;
  int64_t arg = 0;  // Kind-specific payload (rows returned, batch size...).
};

class FlightRecorder {
 public:
  static constexpr size_t kCapacity = 512;  // Power of two.
  static constexpr uint32_t kKindRead = 1;
  static constexpr uint32_t kKindWrite = 2;
  static constexpr uint32_t kKindExplain = 3;
  static constexpr uint32_t kKindBatch = 4;

  // Process-wide ring. Never destroyed (crash paths dump it at _exit time).
  static FlightRecorder& Default();

  FlightRecorder() = default;
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // Appends `record` (its seq/ts/tid are filled in here). Lock-free.
  void Record(FlightRecord record);

  // Total records ever appended (>= kCapacity means the ring has wrapped).
  uint64_t TotalRecorded() const {
    return head_.load(std::memory_order_relaxed);
  }

  // Copies the retained records, oldest first.
  void Snapshot(std::vector<FlightRecord>* out) const;

  void Reset();

  // {"total": N, "capacity": C, "records": [...]} — the ddctool surface.
  void RenderJson(std::ostream& os) const;

  // Async-signal-safe dump of the same JSON (fixed stack buffers, write(2)
  // only). `crash_site` (may be null) is recorded in the header. Returns 0
  // on success.
  int DumpToFd(int fd, const char* crash_site, size_t crash_site_len) const;

  // open/DumpToFd/close. Returns true on success.
  bool DumpToFile(const char* path, const char* crash_site,
                  size_t crash_site_len) const;

 private:
  std::atomic<uint64_t> head_{0};
  FlightRecord slots_[kCapacity];
};

// FNV-1a over the statement text; stable across runs for the same input.
uint64_t HashStatement(const char* data, size_t size);

// Small sequential id for the calling thread (1-based, stable per thread).
uint32_t FlightThreadId();

// Dumps the default recorder to the file named by $DDC_FLIGHTREC_DUMP (no-op
// when unset), tagging the dump with `site`. Called from the DDC_FAULTPOINT
// crash branch immediately before _exit.
void FlightRecorderCrashDump(const char* site, size_t site_len);

// Installs SIGSEGV/SIGBUS/SIGABRT handlers that dump to $DDC_FLIGHTREC_DUMP
// and re-raise with the default disposition. The dump path is cached here so
// the handler itself never calls getenv. Safe to call more than once.
void InstallFlightRecorderSignalHandlers();

}  // namespace obs
}  // namespace ddc

#endif  // DDC_OBS_FLIGHT_RECORDER_H_
