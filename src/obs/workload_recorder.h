// WorkloadRecorder: a bounded sketch of the executed range traffic.
//
// Every executed range — reads and mutations tracked separately — is folded
// into three fixed-size summaries per class:
//
//   1. A per-dimension signed-log coordinate grid (37 buckets per dim,
//      centered on zero) over range origins: which part of the coordinate
//      space is being hit.
//   2. Per-dimension log-bucketed extent counts plus a log-bucketed volume
//      histogram: what shapes and sizes the ranges have.
//   3. A top-K (K = 16) list of exact hot boxes maintained with the
//      space-saving algorithm: `count` is an overestimate of the box's true
//      frequency by at most `overcount`, and any box whose true frequency
//      exceeds total/K is guaranteed to be present.
//
// This is the "observed traffic" input the workload-adaptive caching
// roadmap item consumes. All state is fixed-size: recording allocates
// nothing (grid/extent updates are relaxed atomics; the top-K list is a
// small fixed array under a mutex). The obs layer sits below common/, so
// the API takes raw coordinate pointers rather than Box/Cell.
//
// Recording sites (DynamicDataCube::RangeSum/RangeSumBatch/ApplyBatch) are
// guarded by obs::Enabled(), preserving the -DDDC_OBS=OFF zero-cost
// contract; the class itself always compiles so tools can render an empty
// sketch in disabled builds.

#ifndef DDC_OBS_WORKLOAD_RECORDER_H_
#define DDC_OBS_WORKLOAD_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <vector>

#include "obs/metrics.h"

namespace ddc {
namespace obs {

class WorkloadRecorder {
 private:
  struct ClassStats;  // Defined below; forward-declared for BatchScope.

 public:
  static constexpr int kMaxDims = 8;       // Dims beyond this are ignored.
  static constexpr int kCoordBuckets = 37; // Signed log grid, bucket 18 = 0.
  static constexpr int kExtentBuckets = 20;
  static constexpr int kTopK = 16;
  // BatchScope samples every kBatchTopKStride-th box into the top-K list
  // with weight kBatchTopKStride (power of two; see BatchScope docs).
  static constexpr int kBatchTopKStride = 4;

  // One exact hot range from the space-saving list. True frequency f obeys
  // count - overcount <= f <= count.
  struct HotBox {
    int dims = 0;
    int64_t lo[kMaxDims] = {};
    int64_t hi[kMaxDims] = {};
    int64_t count = 0;
    int64_t overcount = 0;
  };

  // Process-wide recorder the cube layers feed. Never destroyed.
  static WorkloadRecorder& Default();

  // Runtime toggle for the sketch alone (default on): lets deployments keep
  // the metrics registry while skipping heatmap collection, and lets the
  // bench overhead gate measure the recorder+ledger marginal cost against
  // an obs-enabled baseline. Record* calls return immediately when off.
  static void SetRecording(bool on);
  static bool RecordingEnabled();

  WorkloadRecorder() = default;
  WorkloadRecorder(const WorkloadRecorder&) = delete;
  WorkloadRecorder& operator=(const WorkloadRecorder&) = delete;

  // Fold one inclusive box [lo, hi] into the read / mutation sketch. A
  // point op passes lo == hi. Also bumps the registry counters
  // workload.reads / workload.mutations (and .cells) when obs is enabled.
  void RecordRead(const int64_t* lo, const int64_t* hi, int dims);
  void RecordMutation(const int64_t* lo, const int64_t* hi, int dims);

  // Batched recording for the hot paths (RangeSumBatch / ApplyBatch):
  // accumulates same-dimensionality boxes with plain stores and folds them
  // into the sketch once, at destruction — one pass of atomic adds plus a
  // single top-K lock for the whole batch, which keeps the recorder inside
  // the <=5% introspection overhead budget (bench_query_batch gate). The
  // grid / extent / volume sketches see every box exactly; the top-K list
  // is fed a deterministic 1-in-kBatchTopKStride sample, each insert
  // weighted by the stride, so a batch of B boxes costs B/stride space-
  // saving updates instead of B. The weighted counts stay unbiased for
  // boxes that recur across the sampled positions; the "frequency >
  // total/K implies present" guarantee holds exactly for the single-op
  // Record* entry points and approximately (to within the stride) for
  // batched traffic. The scope holds the class's top-K lock for its
  // lifetime, so keep it tight: construct, loop Record, destroy.
  class BatchScope {
   public:
    BatchScope(WorkloadRecorder& recorder, bool mutations, int dims);
    ~BatchScope();
    BatchScope(const BatchScope&) = delete;
    BatchScope& operator=(const BatchScope&) = delete;

    // Folds one inclusive box; lo/hi carry the scope's dims coordinates.
    void Record(const int64_t* lo, const int64_t* hi);

   private:
    ClassStats* stats_ = nullptr;  // nullptr: recording off, all no-ops.
    std::unique_lock<std::mutex> topk_lock_;
    bool mutations_ = false;
    int dims_ = 0;
    int tracked_ = 0;
    int64_t ops_ = 0;
    int64_t cells_ = 0;
    int64_t volume_sum_ = 0;
    int64_t volume_max_ = 0;
    int64_t volume_counts_[Histogram::kNumBuckets] = {};
    int64_t origin_[kMaxDims][kCoordBuckets] = {};
    int64_t extent_[kMaxDims][kExtentBuckets] = {};
  };

  int64_t ReadCount() const { return reads_.ops.load(std::memory_order_relaxed); }
  int64_t MutationCount() const {
    return mutations_.ops.load(std::memory_order_relaxed);
  }

  // Current hot lists, highest count first.
  std::vector<HotBox> HotReads() const { return reads_.HotList(); }
  std::vector<HotBox> HotMutations() const { return mutations_.HotList(); }

  void Reset();

  // Prometheus-style text (workload_* families, zero buckets elided) and
  // JSON ({"reads": {...}, "mutations": {...}}). Deterministic for a
  // deterministic workload.
  void RenderText(std::ostream& os) const;
  void RenderJson(std::ostream& os) const;

  // Bucketing, exposed for tests. CoordBucket maps v = 0 to 18, positive v
  // to 19..36 and negative v to 17..0 by magnitude bit width (clamped).
  // ExtentBucket maps extent e >= 1 to min(bit_width(e), 19), else 0.
  static int CoordBucket(int64_t v);
  static int ExtentBucket(int64_t extent);

 private:
  struct ClassStats {
    std::atomic<int64_t> ops{0};
    std::atomic<int64_t> cells{0};
    std::atomic<int64_t> max_dims{0};
    std::atomic<int64_t> origin[kMaxDims][kCoordBuckets] = {};
    std::atomic<int64_t> extent[kMaxDims][kExtentBuckets] = {};
    Histogram volume;  // Box volume in cells (saturating product).

    mutable std::mutex topk_mutex;
    // Struct-of-arrays: the insert scan only touches the contiguous
    // fingerprint and count arrays (three cache lines for K = 16) instead
    // of striding across 150-byte HotBox slots; coords live in topk[] and
    // are only read on a fingerprint hit or rewritten on eviction. The
    // count/overcount fields inside topk[] are dead storage — HotList()
    // fills them from the arrays.
    HotBox topk[kTopK];
    uint64_t topk_fp[kTopK] = {};  // Fingerprints: cheap scan, rare compare.
    int64_t topk_count[kTopK] = {};
    int64_t topk_overcount[kTopK] = {};
    int topk_size = 0;

    void Record(const int64_t* lo, const int64_t* hi, int dims);
    // Space-saving insert of `weight` occurrences; caller holds topk_mutex.
    // `fp` is the box's fingerprint (BoxFingerprint): equality is checked
    // on the fingerprint first so a miss costs one word compare per slot.
    void TopKInsertLocked(uint64_t fp, const int64_t* lo, const int64_t* hi,
                          int tracked, int64_t weight);
    std::vector<HotBox> HotList() const;
    void Reset();
  };

  void RenderClassText(const char* prefix, const ClassStats& s,
                       std::ostream& os) const;
  void RenderClassJson(const ClassStats& s, std::ostream& os) const;

  ClassStats reads_;
  ClassStats mutations_;
};

}  // namespace obs
}  // namespace ddc

#endif  // DDC_OBS_WORKLOAD_RECORDER_H_
