#include "obs/workload_recorder.h"

#include <algorithm>
#include <bit>
#include <ostream>

namespace ddc {
namespace obs {

namespace {

// Saturating volume of an inclusive box, in cells.
int64_t BoxVolume(const int64_t* lo, const int64_t* hi, int dims) {
  unsigned __int128 vol = 1;
  for (int d = 0; d < dims; ++d) {
    const int64_t extent = hi[d] >= lo[d] ? hi[d] - lo[d] + 1 : 0;
    vol *= static_cast<unsigned __int128>(extent);
    if (vol > static_cast<unsigned __int128>(INT64_MAX)) return INT64_MAX;
  }
  return static_cast<int64_t>(vol);
}

bool SameBox(const WorkloadRecorder::HotBox& a, const int64_t* lo,
             const int64_t* hi, int dims) {
  if (a.dims != dims) return false;
  for (int d = 0; d < dims; ++d) {
    if (a.lo[d] != lo[d] || a.hi[d] != hi[d]) return false;
  }
  return true;
}

void WriteJsonCoordArray(std::ostream& os, const int64_t* v, int dims) {
  os << "[";
  for (int d = 0; d < dims; ++d) os << (d == 0 ? "" : ", ") << v[d];
  os << "]";
}

}  // namespace

int WorkloadRecorder::CoordBucket(int64_t v) {
  constexpr int kCenter = kCoordBuckets / 2;  // 18
  if (v == 0) return kCenter;
  // Magnitude in bits, clamped so the grid stays bounded. INT64_MIN is
  // handled by the unsigned negation.
  const uint64_t mag =
      v > 0 ? static_cast<uint64_t>(v) : -static_cast<uint64_t>(v);
  const int width = std::min(static_cast<int>(std::bit_width(mag)), kCenter);
  return v > 0 ? kCenter + width : kCenter - width;
}

int WorkloadRecorder::ExtentBucket(int64_t extent) {
  if (extent <= 0) return 0;
  const int width =
      static_cast<int>(std::bit_width(static_cast<uint64_t>(extent)));
  return width < kExtentBuckets ? width : kExtentBuckets - 1;
}

WorkloadRecorder& WorkloadRecorder::Default() {
  // Leaked: instrumented cube destructors may record during program exit.
  static WorkloadRecorder* recorder = new WorkloadRecorder();
  return *recorder;
}

namespace {
std::atomic<bool> g_recording{true};
}  // namespace

void WorkloadRecorder::SetRecording(bool on) {
  g_recording.store(on, std::memory_order_relaxed);
}

bool WorkloadRecorder::RecordingEnabled() {
  return g_recording.load(std::memory_order_relaxed);
}

// FNV-1a over the box corners; the top-K scan compares fingerprints first
// so a slot miss costs one word compare instead of 2 * dims.
uint64_t BoxFingerprint(const int64_t* lo, const int64_t* hi, int tracked) {
  uint64_t h = 0xcbf29ce484222325ull ^ static_cast<uint64_t>(tracked);
  for (int d = 0; d < tracked; ++d) {
    h = (h ^ static_cast<uint64_t>(lo[d])) * 0x100000001b3ull;
    h = (h ^ static_cast<uint64_t>(hi[d])) * 0x100000001b3ull;
  }
  return h;
}

void WorkloadRecorder::ClassStats::Record(const int64_t* lo, const int64_t* hi,
                                          int dims) {
  const int tracked = std::min(dims, kMaxDims);
  ops.fetch_add(1, std::memory_order_relaxed);
  const int64_t vol = BoxVolume(lo, hi, dims);
  cells.fetch_add(vol, std::memory_order_relaxed);
  volume.Record(vol);
  int64_t seen = max_dims.load(std::memory_order_relaxed);
  while (tracked > seen &&
         !max_dims.compare_exchange_weak(seen, tracked,
                                         std::memory_order_relaxed)) {
  }
  for (int d = 0; d < tracked; ++d) {
    origin[d][CoordBucket(lo[d])].fetch_add(1, std::memory_order_relaxed);
    const int64_t e = hi[d] >= lo[d] ? hi[d] - lo[d] + 1 : 0;
    extent[d][ExtentBucket(e)].fetch_add(1, std::memory_order_relaxed);
  }

  std::lock_guard<std::mutex> lock(topk_mutex);
  TopKInsertLocked(BoxFingerprint(lo, hi, tracked), lo, hi, tracked,
                   /*weight=*/1);
}

// Space-saving top-K over the exact (first kMaxDims dims of the) box.
void WorkloadRecorder::ClassStats::TopKInsertLocked(uint64_t fp,
                                                    const int64_t* lo,
                                                    const int64_t* hi,
                                                    int tracked,
                                                    int64_t weight) {
  int min_at = 0;
  for (int i = 0; i < topk_size; ++i) {
    if (topk_fp[i] == fp && SameBox(topk[i], lo, hi, tracked)) {
      topk_count[i] += weight;
      return;
    }
    if (topk_count[i] < topk_count[min_at]) min_at = i;
  }
  int at;
  int64_t inherited = 0;
  if (topk_size < kTopK) {
    at = topk_size++;
  } else {
    at = min_at;
    inherited = topk_count[at];
  }
  HotBox& slot = topk[at];
  slot.dims = tracked;
  for (int d = 0; d < tracked; ++d) {
    slot.lo[d] = lo[d];
    slot.hi[d] = hi[d];
  }
  topk_count[at] = inherited + weight;
  topk_overcount[at] = inherited;
  topk_fp[at] = fp;
}

WorkloadRecorder::BatchScope::BatchScope(WorkloadRecorder& recorder,
                                         bool mutations, int dims)
    : mutations_(mutations), dims_(dims) {
  if (!RecordingEnabled() || dims <= 0) return;
  stats_ = mutations ? &recorder.mutations_ : &recorder.reads_;
  tracked_ = std::min(dims, kMaxDims);
  topk_lock_ = std::unique_lock<std::mutex>(stats_->topk_mutex);
}

void WorkloadRecorder::BatchScope::Record(const int64_t* lo,
                                          const int64_t* hi) {
  if (stats_ == nullptr) return;
  ++ops_;
  const int64_t vol = BoxVolume(lo, hi, dims_);
  cells_ += vol;
  ++volume_counts_[Histogram::BucketIndex(vol)];
  volume_sum_ += vol;
  if (vol > volume_max_) volume_max_ = vol;
  for (int d = 0; d < tracked_; ++d) {
    ++origin_[d][CoordBucket(lo[d])];
    const int64_t e = hi[d] >= lo[d] ? hi[d] - lo[d] + 1 : 0;
    ++extent_[d][ExtentBucket(e)];
  }
  // Deterministic 1-in-stride top-K sampling (weight-compensated); the
  // fingerprint is only computed for sampled boxes. See the header.
  if (((ops_ - 1) & (kBatchTopKStride - 1)) == 0) {
    stats_->TopKInsertLocked(BoxFingerprint(lo, hi, tracked_), lo, hi,
                             tracked_, kBatchTopKStride);
  }
}

WorkloadRecorder::BatchScope::~BatchScope() {
  if (stats_ == nullptr) return;
  topk_lock_.unlock();
  if (ops_ == 0) return;
  ClassStats& s = *stats_;
  s.ops.fetch_add(ops_, std::memory_order_relaxed);
  s.cells.fetch_add(cells_, std::memory_order_relaxed);
  int64_t seen = s.max_dims.load(std::memory_order_relaxed);
  while (tracked_ > seen &&
         !s.max_dims.compare_exchange_weak(seen, tracked_,
                                           std::memory_order_relaxed)) {
  }
  for (int d = 0; d < tracked_; ++d) {
    for (int b = 0; b < kCoordBuckets; ++b) {
      if (origin_[d][b] != 0) {
        s.origin[d][b].fetch_add(origin_[d][b], std::memory_order_relaxed);
      }
    }
    for (int b = 0; b < kExtentBuckets; ++b) {
      if (extent_[d][b] != 0) {
        s.extent[d][b].fetch_add(extent_[d][b], std::memory_order_relaxed);
      }
    }
  }
  s.volume.Merge(volume_counts_, ops_, volume_sum_, volume_max_);
  if (Enabled()) {
    static Counter* read_ops =
        MetricsRegistry::Default().GetCounter("workload.reads");
    static Counter* read_cells =
        MetricsRegistry::Default().GetCounter("workload.read_cells");
    static Counter* mut_ops =
        MetricsRegistry::Default().GetCounter("workload.mutations");
    static Counter* mut_cells =
        MetricsRegistry::Default().GetCounter("workload.mutation_cells");
    (mutations_ ? mut_ops : read_ops)->Add(ops_);
    (mutations_ ? mut_cells : read_cells)->Add(cells_);
  }
}

std::vector<WorkloadRecorder::HotBox> WorkloadRecorder::ClassStats::HotList()
    const {
  std::vector<HotBox> out;
  {
    std::lock_guard<std::mutex> lock(topk_mutex);
    out.assign(topk, topk + topk_size);
    for (int i = 0; i < topk_size; ++i) {
      out[static_cast<size_t>(i)].count = topk_count[i];
      out[static_cast<size_t>(i)].overcount = topk_overcount[i];
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const HotBox& a, const HotBox& b) {
                     return a.count > b.count;
                   });
  return out;
}

void WorkloadRecorder::ClassStats::Reset() {
  ops.store(0, std::memory_order_relaxed);
  cells.store(0, std::memory_order_relaxed);
  max_dims.store(0, std::memory_order_relaxed);
  for (auto& dim : origin) {
    for (auto& bucket : dim) bucket.store(0, std::memory_order_relaxed);
  }
  for (auto& dim : extent) {
    for (auto& bucket : dim) bucket.store(0, std::memory_order_relaxed);
  }
  volume.Reset();
  std::lock_guard<std::mutex> lock(topk_mutex);
  topk_size = 0;
}

void WorkloadRecorder::RecordRead(const int64_t* lo, const int64_t* hi,
                                  int dims) {
  if (!RecordingEnabled()) return;
  reads_.Record(lo, hi, dims);
  if (Enabled()) {
    static Counter* ops = MetricsRegistry::Default().GetCounter("workload.reads");
    static Counter* cells =
        MetricsRegistry::Default().GetCounter("workload.read_cells");
    ops->Increment();
    cells->Add(BoxVolume(lo, hi, dims));
  }
}

void WorkloadRecorder::RecordMutation(const int64_t* lo, const int64_t* hi,
                                      int dims) {
  if (!RecordingEnabled()) return;
  mutations_.Record(lo, hi, dims);
  if (Enabled()) {
    static Counter* ops =
        MetricsRegistry::Default().GetCounter("workload.mutations");
    static Counter* cells =
        MetricsRegistry::Default().GetCounter("workload.mutation_cells");
    ops->Increment();
    cells->Add(BoxVolume(lo, hi, dims));
  }
}

void WorkloadRecorder::Reset() {
  reads_.Reset();
  mutations_.Reset();
}

void WorkloadRecorder::RenderClassText(const char* prefix,
                                       const ClassStats& s,
                                       std::ostream& os) const {
  const int dims =
      static_cast<int>(s.max_dims.load(std::memory_order_relaxed));
  os << "# TYPE " << prefix << "_ops counter\n"
     << prefix << "_ops " << s.ops.load(std::memory_order_relaxed) << "\n";
  os << "# TYPE " << prefix << "_cells counter\n"
     << prefix << "_cells " << s.cells.load(std::memory_order_relaxed)
     << "\n";

  os << "# TYPE " << prefix << "_origin counter\n";
  for (int d = 0; d < dims; ++d) {
    for (int b = 0; b < kCoordBuckets; ++b) {
      const int64_t n = s.origin[d][b].load(std::memory_order_relaxed);
      if (n == 0) continue;
      os << prefix << "_origin{dim=\"" << d << "\",bucket=\"" << b << "\"} "
         << n << "\n";
    }
  }
  os << "# TYPE " << prefix << "_extent counter\n";
  for (int d = 0; d < dims; ++d) {
    for (int b = 0; b < kExtentBuckets; ++b) {
      const int64_t n = s.extent[d][b].load(std::memory_order_relaxed);
      if (n == 0) continue;
      os << prefix << "_extent{dim=\"" << d << "\",bucket=\"" << b << "\"} "
         << n << "\n";
    }
  }

  const Histogram::Snapshot vol = s.volume.Read();
  os << "# TYPE " << prefix << "_volume summary\n"
     << prefix << "_volume_count " << vol.count << "\n"
     << prefix << "_volume_sum " << vol.sum << "\n"
     << prefix << "_volume_p50 " << vol.Percentile(0.50) << "\n"
     << prefix << "_volume_p99 " << vol.Percentile(0.99) << "\n"
     << prefix << "_volume_max " << vol.max << "\n";

  os << "# TYPE " << prefix << "_hot gauge\n";
  const std::vector<HotBox> hot = s.HotList();
  for (size_t i = 0; i < hot.size(); ++i) {
    const HotBox& h = hot[i];
    os << prefix << "_hot{rank=\"" << i << "\",box=\"";
    for (int d = 0; d < h.dims; ++d) {
      os << (d == 0 ? "" : ",") << h.lo[d] << ":" << h.hi[d];
    }
    os << "\",overcount=\"" << h.overcount << "\"} " << h.count << "\n";
  }
}

void WorkloadRecorder::RenderClassJson(const ClassStats& s,
                                       std::ostream& os) const {
  const int dims =
      static_cast<int>(s.max_dims.load(std::memory_order_relaxed));
  os << "{\"ops\": " << s.ops.load(std::memory_order_relaxed)
     << ", \"cells\": " << s.cells.load(std::memory_order_relaxed);

  const Histogram::Snapshot vol = s.volume.Read();
  os << ", \"volume\": {\"count\": " << vol.count << ", \"sum\": " << vol.sum
     << ", \"p50\": " << vol.Percentile(0.50)
     << ", \"p99\": " << vol.Percentile(0.99) << ", \"max\": " << vol.max
     << "}";

  os << ", \"origin\": {";
  bool first_dim = true;
  for (int d = 0; d < dims; ++d) {
    os << (first_dim ? "" : ", ") << "\"d" << d << "\": {";
    first_dim = false;
    bool first = true;
    for (int b = 0; b < kCoordBuckets; ++b) {
      const int64_t n = s.origin[d][b].load(std::memory_order_relaxed);
      if (n == 0) continue;
      os << (first ? "" : ", ") << "\"" << b << "\": " << n;
      first = false;
    }
    os << "}";
  }
  os << "}";

  os << ", \"extent\": {";
  first_dim = true;
  for (int d = 0; d < dims; ++d) {
    os << (first_dim ? "" : ", ") << "\"d" << d << "\": {";
    first_dim = false;
    bool first = true;
    for (int b = 0; b < kExtentBuckets; ++b) {
      const int64_t n = s.extent[d][b].load(std::memory_order_relaxed);
      if (n == 0) continue;
      os << (first ? "" : ", ") << "\"" << b << "\": " << n;
      first = false;
    }
    os << "}";
  }
  os << "}";

  os << ", \"hot\": [";
  const std::vector<HotBox> hot = s.HotList();
  for (size_t i = 0; i < hot.size(); ++i) {
    const HotBox& h = hot[i];
    os << (i == 0 ? "" : ", ") << "{\"lo\": ";
    WriteJsonCoordArray(os, h.lo, h.dims);
    os << ", \"hi\": ";
    WriteJsonCoordArray(os, h.hi, h.dims);
    os << ", \"count\": " << h.count << ", \"overcount\": " << h.overcount
       << "}";
  }
  os << "]}";
}

void WorkloadRecorder::RenderText(std::ostream& os) const {
  RenderClassText("workload_read", reads_, os);
  RenderClassText("workload_mutation", mutations_, os);
}

void WorkloadRecorder::RenderJson(std::ostream& os) const {
  os << "{\"reads\": ";
  RenderClassJson(reads_, os);
  os << ", \"mutations\": ";
  RenderClassJson(mutations_, os);
  os << "}\n";
}

}  // namespace obs
}  // namespace ddc
