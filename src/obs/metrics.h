// Observability: a process-wide registry of named counters, gauges and
// log-bucketed latency/size histograms.
//
// Design constraints, in order:
//   1. Recording is lock-free: every mutation is a relaxed atomic op on a
//      pre-resolved handle, so instrumentation is safe from const query
//      paths under shared locks — the property that lets the concurrent
//      facades account per-value costs at all (plain OpCounters cannot be
//      mutated by concurrent readers; see common/op_counter.h).
//   2. Zero cost when disabled: every instrumentation site is guarded by
//      `if (obs::Enabled())`. At runtime that is one relaxed bool load and a
//      predictable branch; with the DDC_OBS=OFF compile option Enabled() is
//      a constexpr false and the sites fold away entirely.
//   3. Handles are resolved once and never invalidated: GetCounter/GetGauge/
//      GetHistogram intern by name under a mutex (registration is cold) and
//      the returned pointers stay valid for the registry's lifetime, so hot
//      paths cache them in function-local statics.
//
// Histograms are HDR-style with power-of-two buckets: bucket 0 holds the
// value 0 and bucket b >= 1 holds [2^(b-1), 2^b - 1], so 64 buckets cover
// the full non-negative int64 range with <= 2x relative quantile error.
// Percentile readout returns min(bucket upper bound, observed max), which
// bounds the reported quantile within [exact, 2 * exact].
//
// Exposition: RenderText (Prometheus text format; dots in metric names map
// to underscores) and RenderJson (dotted names preserved). See DESIGN.md §9.

#ifndef DDC_OBS_METRICS_H_
#define DDC_OBS_METRICS_H_

#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace ddc {
namespace obs {

// ---------------------------------------------------------------------------
// Enable guard.

#ifdef DDC_OBS_DISABLED
// Compile-time off: instrumentation sites guarded by Enabled() are dead code.
constexpr bool Enabled() { return false; }
inline void SetEnabled(bool) {}
#else
// Runtime flag, initialized from the DDC_OBS_ENABLED environment variable
// (unset or any value other than "0"/"false"/"off" means enabled).
bool Enabled();
void SetEnabled(bool enabled);
#endif

// Monotonic wall time in nanoseconds (steady clock).
inline uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// ---------------------------------------------------------------------------
// Instruments. All mutation is relaxed-atomic: totals are exact once the
// writers quiesce, and monotone lower bounds while they run.

class Counter {
 public:
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  std::atomic<int64_t> value_{0};
};

class Histogram {
 public:
  static constexpr int kNumBuckets = 64;

  // Bucket index for a value: 0 holds {v <= 0}, bucket b >= 1 holds
  // [2^(b-1), 2^b - 1]; values past 2^62 collapse into bucket 63.
  static int BucketIndex(int64_t value) {
    if (value <= 0) return 0;
    const int b = std::bit_width(static_cast<uint64_t>(value));
    return b < kNumBuckets ? b : kNumBuckets - 1;
  }

  // Largest value the bucket admits (inclusive).
  static int64_t BucketUpperBound(int bucket) {
    if (bucket <= 0) return 0;
    if (bucket >= kNumBuckets - 1) return INT64_MAX;
    return (int64_t{1} << bucket) - 1;
  }

  void Record(int64_t value) {
    if (value < 0) value = 0;
    counts_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    int64_t seen = max_.load(std::memory_order_relaxed);
    while (value > seen &&
           !max_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
  }

  // Bulk merge used by batch accumulators (obs/workload_recorder.h): folds
  // `bucket_counts` plus the precomputed count/sum/max in O(non-zero
  // buckets) atomic ops — equivalent to the corresponding Record sequence.
  void Merge(const int64_t bucket_counts[kNumBuckets], int64_t count,
             int64_t sum, int64_t max) {
    for (int b = 0; b < kNumBuckets; ++b) {
      if (bucket_counts[b] != 0) {
        counts_[b].fetch_add(bucket_counts[b], std::memory_order_relaxed);
      }
    }
    count_.fetch_add(count, std::memory_order_relaxed);
    sum_.fetch_add(sum, std::memory_order_relaxed);
    int64_t seen = max_.load(std::memory_order_relaxed);
    while (max > seen &&
           !max_.compare_exchange_weak(seen, max,
                                       std::memory_order_relaxed)) {
    }
  }

  int64_t Count() const { return count_.load(std::memory_order_relaxed); }
  int64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  int64_t Max() const { return max_.load(std::memory_order_relaxed); }

  // A consistent-enough copy for readout: bucket counts are loaded once
  // each; while writers are running the quantiles are approximate, after
  // quiescence they are the bucket-resolution truth.
  struct Snapshot {
    int64_t counts[kNumBuckets] = {};
    int64_t count = 0;
    int64_t sum = 0;
    int64_t max = 0;

    // Quantile q in [0, 1]: the upper bound of the bucket containing the
    // ceil(q * count)-th smallest sample, clamped to the observed max.
    // Guarantees exact <= result <= 2 * exact for positive samples.
    int64_t Percentile(double q) const;
  };
  Snapshot Read() const;

  void Reset();

 private:
  std::atomic<int64_t> counts_[kNumBuckets] = {};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> max_{0};
};

// ---------------------------------------------------------------------------
// Registry.

// Naming convention (see CONTRIBUTING.md): dotted lower_snake segments,
// `namespace.object.detail`, with a unit suffix for histograms (`_ns` for
// nanoseconds; unsuffixed histograms count sizes).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // The process-wide registry every built-in instrumentation site records
  // into. Never destroyed (instrumented destructors may run at exit).
  static MetricsRegistry& Default();

  // Intern-by-name: the first call creates the instrument, later calls
  // return the same pointer. Pointers stay valid for the registry lifetime.
  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  // Zeroes every registered instrument (instruments stay registered). For
  // tests and tools that want a workload-scoped readout.
  void Reset();

  // Visitation used by the renderers; fn runs under the registration mutex,
  // so it must not call back into the registry.
  template <typename CounterFn, typename GaugeFn, typename HistFn>
  void ForEach(const CounterFn& counter_fn, const GaugeFn& gauge_fn,
               const HistFn& hist_fn) const {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [name, c] : counters_) counter_fn(name, *c);
    for (const auto& [name, g] : gauges_) gauge_fn(name, *g);
    for (const auto& [name, h] : histograms_) hist_fn(name, *h);
  }

 private:
  mutable std::mutex mutex_;
  // std::map: stable pointers, and render output comes out name-sorted.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

// ---------------------------------------------------------------------------
// Exposition.

// Prometheus text format ('.' -> '_' in names). Histograms emit cumulative
// buckets, sum, count, plus p50/p90/p99/max convenience lines.
void RenderText(const MetricsRegistry& registry, std::ostream& os);
inline void RenderText(std::ostream& os) {
  RenderText(MetricsRegistry::Default(), os);
}

// JSON: {"counters": {...}, "gauges": {...}, "histograms": {...}} with
// dotted names preserved and per-histogram count/sum/max/p50/p90/p99.
void RenderJson(const MetricsRegistry& registry, std::ostream& os);
inline void RenderJson(std::ostream& os) {
  RenderJson(MetricsRegistry::Default(), os);
}

// ---------------------------------------------------------------------------
// RAII latency helper: reads the clock only when observability is enabled
// at construction, and records wall nanoseconds into `hist` on destruction.
class ScopedLatencyTimer {
 public:
  explicit ScopedLatencyTimer(Histogram* hist)
      : hist_(Enabled() ? hist : nullptr),
        start_(hist_ != nullptr ? NowNanos() : 0) {}
  ~ScopedLatencyTimer() {
    if (hist_ != nullptr) {
      hist_->Record(static_cast<int64_t>(NowNanos() - start_));
    }
  }
  ScopedLatencyTimer(const ScopedLatencyTimer&) = delete;
  ScopedLatencyTimer& operator=(const ScopedLatencyTimer&) = delete;

 private:
  Histogram* hist_;
  uint64_t start_;
};

}  // namespace obs
}  // namespace ddc

#endif  // DDC_OBS_METRICS_H_
