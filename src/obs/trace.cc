#include "obs/trace.h"

#include <algorithm>
#include <array>
#include <memory>
#include <mutex>
#include <ostream>
#include <utility>

namespace ddc {
namespace obs {

namespace {

constexpr size_t kCapacity = 4096;

// One thread's ring. Appended to by the owner thread only; the per-ring
// mutex exists so a merge can read a consistent snapshot while the owner
// keeps recording (and so TSan sees the synchronization).
struct Ring {
  std::mutex mutex;
  std::array<TraceEvent, kCapacity> events;
  uint64_t head = 0;  // Total events ever appended; ring index = head % cap.
  uint64_t dropped = 0;  // Events overwritten since the last ResetTrace.
  uint32_t tid = 0;

  void Append(const TraceEvent& event) {
    bool overwrote;
    {
      std::lock_guard<std::mutex> lock(mutex);
      overwrote = head >= kCapacity;
      if (overwrote) ++dropped;
      events[static_cast<size_t>(head % kCapacity)] = event;
      ++head;
    }
    if (overwrote) {
      static Counter* drop_counter =
          MetricsRegistry::Default().GetCounter("trace.dropped");
      drop_counter->Increment();
    }
  }
};

struct RingList {
  std::mutex mutex;
  std::vector<std::unique_ptr<Ring>> rings;
};

RingList& Rings() {
  // Leaked: thread_local ring pointers may be used during late thread exit.
  static RingList* list = new RingList();
  return *list;
}

Ring& ThisThreadRing() {
  thread_local Ring* ring = [] {
    auto owned = std::make_unique<Ring>();
    Ring* raw = owned.get();
    RingList& list = Rings();
    std::lock_guard<std::mutex> lock(list.mutex);
    raw->tid = static_cast<uint32_t>(list.rings.size() + 1);
    list.rings.push_back(std::move(owned));
    return raw;
  }();
  return *ring;
}

}  // namespace

size_t TraceCapacityPerThread() { return kCapacity; }

TraceSpan::~TraceSpan() {
  if (!active_) return;
  Ring& ring = ThisThreadRing();
  TraceEvent event;
  event.name = name_;
  event.start_ns = start_ns_;
  event.end_ns = NowNanos();
  event.tid = ring.tid;
  event.arg0 = arg0_;
  event.arg1 = arg1_;
  if (latency_hist_ != nullptr) {
    latency_hist_->Record(static_cast<int64_t>(event.end_ns - event.start_ns));
  }
  ring.Append(event);
}

void DrainTrace(std::vector<TraceEvent>* out) {
  out->clear();
  RingList& list = Rings();
  std::lock_guard<std::mutex> list_lock(list.mutex);
  for (const std::unique_ptr<Ring>& ring : list.rings) {
    std::lock_guard<std::mutex> ring_lock(ring->mutex);
    const uint64_t head = ring->head;
    const uint64_t kept = head < kCapacity ? head : kCapacity;
    for (uint64_t i = head - kept; i < head; ++i) {
      out->push_back(ring->events[static_cast<size_t>(i % kCapacity)]);
    }
  }
  std::sort(out->begin(), out->end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.start_ns < b.start_ns;
            });
}

void ResetTrace() {
  RingList& list = Rings();
  std::lock_guard<std::mutex> list_lock(list.mutex);
  for (const std::unique_ptr<Ring>& ring : list.rings) {
    std::lock_guard<std::mutex> ring_lock(ring->mutex);
    ring->head = 0;
    ring->dropped = 0;
  }
}

uint64_t TraceDroppedTotal() {
  uint64_t total = 0;
  RingList& list = Rings();
  std::lock_guard<std::mutex> list_lock(list.mutex);
  for (const std::unique_ptr<Ring>& ring : list.rings) {
    std::lock_guard<std::mutex> ring_lock(ring->mutex);
    total += ring->dropped;
  }
  return total;
}

void RenderTraceJson(std::ostream& os) {
  std::vector<TraceEvent> events;
  DrainTrace(&events);
  // Per-ring drop counts, exported as chrome-trace counter events so a wrap
  // is visible right in the viewer next to the surviving spans.
  std::vector<std::pair<uint32_t, uint64_t>> drops;
  {
    RingList& list = Rings();
    std::lock_guard<std::mutex> list_lock(list.mutex);
    for (const std::unique_ptr<Ring>& ring : list.rings) {
      std::lock_guard<std::mutex> ring_lock(ring->mutex);
      if (ring->dropped > 0) drops.emplace_back(ring->tid, ring->dropped);
    }
  }
  os << "[";
  bool first = true;
  for (const TraceEvent& e : events) {
    os << (first ? "" : ",") << "\n  {\"name\": \"" << e.name
       << "\", \"ph\": \"X\", \"ts\": " << e.start_ns / 1000
       << ", \"dur\": " << (e.end_ns - e.start_ns) / 1000
       << ", \"pid\": 1, \"tid\": " << e.tid << ", \"args\": {\"arg0\": "
       << e.arg0 << ", \"arg1\": " << e.arg1 << "}}";
    first = false;
  }
  const uint64_t last_ts =
      events.empty() ? 0 : events.back().start_ns / 1000;
  for (const auto& [tid, dropped] : drops) {
    os << (first ? "" : ",") << "\n  {\"name\": \"trace.dropped\", "
       << "\"ph\": \"C\", \"ts\": " << last_ts << ", \"pid\": 1, \"tid\": "
       << tid << ", \"args\": {\"dropped\": " << dropped << "}}";
    first = false;
  }
  os << (first ? "" : "\n") << "]\n";
}

}  // namespace obs
}  // namespace ddc
