#include "obs/flight_recorder.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ostream>

#include "obs/metrics.h"

namespace ddc {
namespace obs {

namespace {

// Cached $DDC_FLIGHTREC_DUMP value; resolved once so the signal handler and
// the crash branch never call getenv from an async context.
const char* DumpPath() {
  static const char* path = [] {
    const char* p = std::getenv("DDC_FLIGHTREC_DUMP");
    return (p != nullptr && p[0] != '\0') ? strdup(p) : nullptr;
  }();
  return path;
}

// Formats one record into buf. Returns bytes written (no truncation at the
// chosen buffer size: every field is a bounded integer).
int FormatRecord(char* buf, size_t cap, const FlightRecord& r, bool first) {
  return std::snprintf(
      buf, cap,
      "%s\n  {\"seq\": %llu, \"ts_ns\": %llu, \"tid\": %u, \"kind\": %u, "
      "\"stmt_hash\": \"%016llx\", \"nodes_visited\": %lld, "
      "\"values_read\": %lld, \"values_written\": %lld, "
      "\"corner_terms\": %lld, \"duration_ns\": %lld, \"arg\": %lld}",
      first ? "" : ",", static_cast<unsigned long long>(r.seq),
      static_cast<unsigned long long>(r.ts_ns), r.tid, r.kind,
      static_cast<unsigned long long>(r.statement_hash),
      static_cast<long long>(r.nodes_visited),
      static_cast<long long>(r.values_read),
      static_cast<long long>(r.values_written),
      static_cast<long long>(r.corner_terms),
      static_cast<long long>(r.duration_ns), static_cast<long long>(r.arg));
}

bool WriteAll(int fd, const char* data, size_t len) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<size_t>(n);
  }
  return true;
}

void FatalSignalHandler(int signo) {
  FlightRecorderCrashDump("signal", 6);
  ::signal(signo, SIG_DFL);
  ::raise(signo);
}

}  // namespace

FlightRecorder& FlightRecorder::Default() {
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

void FlightRecorder::Record(FlightRecord record) {
  const uint64_t seq = head_.fetch_add(1, std::memory_order_relaxed);
  record.seq = seq;
  record.ts_ns = NowNanos();
  record.tid = FlightThreadId();
  slots_[seq % kCapacity] = record;
}

void FlightRecorder::Snapshot(std::vector<FlightRecord>* out) const {
  out->clear();
  const uint64_t head = head_.load(std::memory_order_relaxed);
  const uint64_t kept = head < kCapacity ? head : kCapacity;
  out->reserve(static_cast<size_t>(kept));
  for (uint64_t i = head - kept; i < head; ++i) {
    out->push_back(slots_[i % kCapacity]);
  }
}

void FlightRecorder::Reset() {
  head_.store(0, std::memory_order_relaxed);
}

void FlightRecorder::RenderJson(std::ostream& os) const {
  std::vector<FlightRecord> records;
  Snapshot(&records);
  os << "{\"total\": " << TotalRecorded() << ", \"capacity\": " << kCapacity
     << ", \"records\": [";
  char buf[512];
  for (size_t i = 0; i < records.size(); ++i) {
    FormatRecord(buf, sizeof(buf), records[i], i == 0);
    os << buf;
  }
  os << (records.empty() ? "" : "\n") << "]}\n";
}

int FlightRecorder::DumpToFd(int fd, const char* crash_site,
                             size_t crash_site_len) const {
  const uint64_t head = head_.load(std::memory_order_relaxed);
  const uint64_t kept = head < kCapacity ? head : kCapacity;
  char buf[512];
  int n = std::snprintf(buf, sizeof(buf),
                        "{\"total\": %llu, \"capacity\": %zu, \"crash_site\": "
                        "\"",
                        static_cast<unsigned long long>(head), kCapacity);
  if (!WriteAll(fd, buf, static_cast<size_t>(n))) return -1;
  if (crash_site != nullptr && crash_site_len > 0) {
    // The site name is a failpoint identifier ([a-z0-9._] by convention);
    // written verbatim, bounded.
    if (!WriteAll(fd, crash_site,
                  crash_site_len < 128 ? crash_site_len : 128)) {
      return -1;
    }
  }
  if (!WriteAll(fd, "\", \"records\": [", 15)) return -1;
  bool first = true;
  for (uint64_t i = head - kept; i < head; ++i) {
    n = FormatRecord(buf, sizeof(buf), slots_[i % kCapacity], first);
    first = false;
    if (!WriteAll(fd, buf, static_cast<size_t>(n))) return -1;
  }
  if (!WriteAll(fd, kept == 0 ? "]}\n" : "\n]}\n", kept == 0 ? 3 : 4)) {
    return -1;
  }
  return 0;
}

bool FlightRecorder::DumpToFile(const char* path, const char* crash_site,
                                size_t crash_site_len) const {
  const int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  const int rc = DumpToFd(fd, crash_site, crash_site_len);
  ::close(fd);
  return rc == 0;
}

uint64_t HashStatement(const char* data, size_t size) {
  uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis.
  for (size_t i = 0; i < size; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ull;  // FNV prime.
  }
  return h;
}

uint32_t FlightThreadId() {
  static std::atomic<uint32_t> next{1};
  thread_local uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void FlightRecorderCrashDump(const char* site, size_t site_len) {
  const char* path = DumpPath();
  if (path == nullptr) return;
  FlightRecorder::Default().DumpToFile(path, site, site_len);
}

void InstallFlightRecorderSignalHandlers() {
  DumpPath();  // Resolve the env var now, outside any signal context.
  ::signal(SIGSEGV, FatalSignalHandler);
  ::signal(SIGBUS, FatalSignalHandler);
  ::signal(SIGABRT, FatalSignalHandler);
}

}  // namespace obs
}  // namespace ddc
