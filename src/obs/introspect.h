// Per-operation cost ledger: the EXPLAIN ANALYZE accounting channel.
//
// A CostLedger is a plain struct of exact executed-cost counts for ONE
// logical operation (a statement, a batched query, a write batch). The
// executor installs a ledger on the calling thread with ScopedCostLedger;
// the instrumented layers (DdcCore's value/node accounting, the corner
// decomposition in DynamicDataCube::RangeSumBatch, ShardedCube's fan-out)
// then fold their counts into it at exactly the same sites that mirror into
// the process-wide metrics registry. Single-threaded, that makes the ledger
// bit-identical to the registry deltas for the same operation — the
// contract the EXPLAIN ANALYZE differential test enforces.
//
// Threading: the active ledger is a thread-local pointer. Work an operation
// fans out to OTHER threads (ShardedCube's shard owner threads) cannot fold
// into the caller's thread-local ledger directly; the sharded layer ships a
// private CostLedger slot inside each mailbox request, each owner installs
// it with ScopedCostLedger around the shard work, and the caller merges the
// slots after gathering completions (counts add, tree_depth takes the max).
// The decomposition shape (shard groups and sub-queries) is recorded on the
// calling thread. See DESIGN.md §14–15.
//
// Zero-cost contract: with -DDDC_OBS=OFF, ActiveLedger() is a constexpr
// nullptr and every `if (auto* l = obs::ActiveLedger())` site folds away;
// ScopedCostLedger becomes an empty object. With obs compiled in but no
// ledger installed, a site costs one thread-local load and a predictable
// branch. Installation itself allocates nothing (the ledger lives on the
// caller's stack).

#ifndef DDC_OBS_INTROSPECT_H_
#define DDC_OBS_INTROSPECT_H_

#include <cstdint>

namespace ddc {
namespace obs {

// Exact executed costs of one operation. Counts mirror the registry
// counters of the same name family (ddc.values_read, ddc.nodes_visited,
// ddc.query.batch.corner_terms, ...); ns fields are filled by the executor.
struct CostLedger {
  // DdcCore accounting (primary + overlay trees, same-thread work only).
  int64_t nodes_visited = 0;
  int64_t values_read = 0;
  int64_t values_written = 0;
  int64_t face_lookups = 0;
  // Deepest descent geometry seen (levels of the tree at query time).
  int64_t tree_depth = 0;
  // Batched range-sum decomposition (DynamicDataCube::RangeSumBatch).
  int64_t corner_terms = 0;      // Signed corner terms before dedup.
  int64_t corners_deduped = 0;   // Terms collapsed by the dedup map.
  int64_t unique_corners = 0;    // Descents actually paid for.
  int64_t overlay_terms = 0;     // Overlay trees consulted (2^d or 0).
  // ShardedCube fan-out shape (recorded on the calling thread).
  int64_t shard_groups = 0;      // Touched shards.
  int64_t shard_subqueries = 0;  // Slab sub-queries handed to shards.
  // Query-result cache consultation (CachedCube, src/cache). Probes count
  // canonicalized lookups issued; hits the probes answered without touching
  // the backing cube. probes - hits is exactly the misses the statement
  // paid a real descent for.
  int64_t cache_probes = 0;
  int64_t cache_hits = 0;
  // Executor stage wall times.
  int64_t parse_ns = 0;
  int64_t plan_ns = 0;
  int64_t exec_ns = 0;

  void Clear() { *this = CostLedger{}; }
};

#ifdef DDC_OBS_DISABLED

// Compile-time off: ledger sites are dead code, the scope is an empty shell.
constexpr CostLedger* ActiveLedger() { return nullptr; }

class ScopedCostLedger {
 public:
  explicit ScopedCostLedger(CostLedger*) {}
  ScopedCostLedger(const ScopedCostLedger&) = delete;
  ScopedCostLedger& operator=(const ScopedCostLedger&) = delete;
};

#else

namespace internal {
inline CostLedger*& ActiveLedgerSlot() {
  thread_local CostLedger* slot = nullptr;
  return slot;
}
}  // namespace internal

// The ledger installed on this thread, or nullptr. Instrumentation sites
// use `if (auto* l = obs::ActiveLedger()) l->field += n;`.
inline CostLedger* ActiveLedger() { return internal::ActiveLedgerSlot(); }

// RAII installer. Nests: the previous ledger (usually none) is restored on
// destruction, so an analyzed operation inside an analyzed operation
// attributes to the innermost ledger only.
class ScopedCostLedger {
 public:
  explicit ScopedCostLedger(CostLedger* ledger)
      : previous_(internal::ActiveLedgerSlot()) {
    internal::ActiveLedgerSlot() = ledger;
  }
  ~ScopedCostLedger() { internal::ActiveLedgerSlot() = previous_; }
  ScopedCostLedger(const ScopedCostLedger&) = delete;
  ScopedCostLedger& operator=(const ScopedCostLedger&) = delete;

 private:
  CostLedger* previous_;
};

#endif  // DDC_OBS_DISABLED

}  // namespace obs
}  // namespace ddc

#endif  // DDC_OBS_INTROSPECT_H_
