#include "obs/metrics.h"

#include <cstdlib>
#include <cstring>
#include <ostream>

namespace ddc {
namespace obs {

#ifndef DDC_OBS_DISABLED

namespace {

bool InitEnabledFromEnv() {
  const char* env = std::getenv("DDC_OBS_ENABLED");
  if (env == nullptr) return true;
  return std::strcmp(env, "0") != 0 && std::strcmp(env, "false") != 0 &&
         std::strcmp(env, "off") != 0;
}

std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> enabled{InitEnabledFromEnv()};
  return enabled;
}

}  // namespace

bool Enabled() { return EnabledFlag().load(std::memory_order_relaxed); }

void SetEnabled(bool enabled) {
  EnabledFlag().store(enabled, std::memory_order_relaxed);
}

#endif  // DDC_OBS_DISABLED

int64_t Histogram::Snapshot::Percentile(double q) const {
  if (count <= 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  // Rank of the target sample, 1-based; q = 0 means the smallest sample.
  int64_t rank = static_cast<int64_t>(q * static_cast<double>(count));
  if (static_cast<double>(rank) < q * static_cast<double>(count)) ++rank;
  if (rank < 1) rank = 1;
  if (rank > count) rank = count;
  int64_t seen = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    seen += counts[b];
    if (seen >= rank) {
      const int64_t upper = BucketUpperBound(b);
      return upper < max ? upper : max;
    }
  }
  return max;  // Unreachable when counts are consistent with count.
}

Histogram::Snapshot Histogram::Read() const {
  Snapshot snap;
  for (int b = 0; b < kNumBuckets; ++b) {
    snap.counts[b] = counts_[b].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);
  return snap;
}

void Histogram::Reset() {
  for (int b = 0; b < kNumBuckets; ++b) {
    counts_[b].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Default() {
  // Leaked deliberately: instrumented destructors (arenas in static cubes,
  // the shared thread pool) may record during process teardown, after
  // ordinary static destruction would have run.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

namespace {

// Prometheus metric names allow [a-zA-Z0-9_:]; our dotted names map '.' to
// '_' (the conventional flattening).
std::string PromName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (c == '.') c = '_';
  }
  return out;
}

void RenderHistogramText(const std::string& name,
                         const Histogram::Snapshot& snap, std::ostream& os) {
  os << "# TYPE " << name << " histogram\n";
  int64_t cumulative = 0;
  for (int b = 0; b < Histogram::kNumBuckets; ++b) {
    if (snap.counts[b] == 0) continue;
    cumulative += snap.counts[b];
    os << name << "_bucket{le=\"" << Histogram::BucketUpperBound(b) << "\"} "
       << cumulative << "\n";
  }
  os << name << "_bucket{le=\"+Inf\"} " << snap.count << "\n";
  os << name << "_sum " << snap.sum << "\n";
  os << name << "_count " << snap.count << "\n";
  os << name << "_p50 " << snap.Percentile(0.50) << "\n";
  os << name << "_p90 " << snap.Percentile(0.90) << "\n";
  os << name << "_p99 " << snap.Percentile(0.99) << "\n";
  os << name << "_max " << snap.max << "\n";
}

}  // namespace

void RenderText(const MetricsRegistry& registry, std::ostream& os) {
  registry.ForEach(
      [&os](const std::string& name, const Counter& c) {
        const std::string prom = PromName(name);
        os << "# TYPE " << prom << " counter\n"
           << prom << " " << c.Value() << "\n";
      },
      [&os](const std::string& name, const Gauge& g) {
        const std::string prom = PromName(name);
        os << "# TYPE " << prom << " gauge\n"
           << prom << " " << g.Value() << "\n";
      },
      [&os](const std::string& name, const Histogram& h) {
        RenderHistogramText(PromName(name), h.Read(), os);
      });
}

void RenderJson(const MetricsRegistry& registry, std::ostream& os) {
  // Three passes (one per section) keep the JSON structure simple; the
  // registry only grows, so the sections stay mutually consistent.
  bool first = true;
  os << "{\n  \"counters\": {";
  registry.ForEach(
      [&](const std::string& name, const Counter& c) {
        os << (first ? "" : ",") << "\n    \"" << name << "\": " << c.Value();
        first = false;
      },
      [](const std::string&, const Gauge&) {},
      [](const std::string&, const Histogram&) {});
  os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  registry.ForEach(
      [](const std::string&, const Counter&) {},
      [&](const std::string& name, const Gauge& g) {
        os << (first ? "" : ",") << "\n    \"" << name << "\": " << g.Value();
        first = false;
      },
      [](const std::string&, const Histogram&) {});
  os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  registry.ForEach(
      [](const std::string&, const Counter&) {},
      [](const std::string&, const Gauge&) {},
      [&](const std::string& name, const Histogram& h) {
        const Histogram::Snapshot snap = h.Read();
        os << (first ? "" : ",") << "\n    \"" << name << "\": {"
           << "\"count\": " << snap.count << ", \"sum\": " << snap.sum
           << ", \"max\": " << snap.max
           << ", \"p50\": " << snap.Percentile(0.50)
           << ", \"p90\": " << snap.Percentile(0.90)
           << ", \"p99\": " << snap.Percentile(0.99) << ", \"buckets\": [";
        bool first_bucket = true;
        for (int b = 0; b < Histogram::kNumBuckets; ++b) {
          if (snap.counts[b] == 0) continue;
          os << (first_bucket ? "" : ", ") << "{\"le\": "
             << Histogram::BucketUpperBound(b)
             << ", \"count\": " << snap.counts[b] << "}";
          first_bucket = false;
        }
        os << "]}";
        first = false;
      });
  os << (first ? "" : "\n  ") << "}\n}\n";
}

}  // namespace obs
}  // namespace ddc
