// Parser for the query language of query.h.

#ifndef DDC_QUERY_PARSER_H_
#define DDC_QUERY_PARSER_H_

#include <optional>
#include <string>

#include "query/query.h"

namespace ddc {

// Parses `text` into a Query. On failure returns nullopt and describes the
// problem (with its token position) in *error. Write statements are a parse
// error here; use ParseStatement.
std::optional<Query> ParseQuery(const std::string& text, std::string* error);

// Parses `text` into a Statement — a read query or an ADD/SET write (the
// leading keyword decides). On failure returns nullopt and describes the
// problem in *error.
std::optional<Statement> ParseStatement(const std::string& text,
                                        std::string* error);

}  // namespace ddc

#endif  // DDC_QUERY_PARSER_H_
