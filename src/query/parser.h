// Parser for the query language of query.h.

#ifndef DDC_QUERY_PARSER_H_
#define DDC_QUERY_PARSER_H_

#include <optional>
#include <string>

#include "query/query.h"

namespace ddc {

// Parses `text` into a Query. On failure returns nullopt and describes the
// problem (with its token position) in *error.
std::optional<Query> ParseQuery(const std::string& text, std::string* error);

}  // namespace ddc

#endif  // DDC_QUERY_PARSER_H_
