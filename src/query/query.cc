#include "query/query.h"

namespace ddc {

const char* AggregateName(Aggregate aggregate) {
  switch (aggregate) {
    case Aggregate::kSum:
      return "SUM";
    case Aggregate::kCount:
      return "COUNT";
    case Aggregate::kAvg:
      return "AVG";
  }
  return "?";
}

std::string QueryToString(const Query& query) {
  std::string out = AggregateName(query.aggregate);
  if (query.group_by.has_value()) {
    out += " GROUP BY d" + std::to_string(query.group_by->dim);
    if (query.group_by->group_size != 1) {
      out += " SIZE " + std::to_string(query.group_by->group_size);
    }
  }
  bool first = true;
  for (const Predicate& pred : query.predicates) {
    out += first ? " WHERE " : " AND ";
    first = false;
    out += "d" + std::to_string(pred.dim);
    if (pred.lo == pred.hi) {
      out += " = " + std::to_string(pred.lo);
    } else {
      out += " IN [" + std::to_string(pred.lo) + ", " +
             std::to_string(pred.hi) + "]";
    }
  }
  return out;
}

}  // namespace ddc
