#include "query/query.h"

namespace ddc {

const char* AggregateName(Aggregate aggregate) {
  switch (aggregate) {
    case Aggregate::kSum:
      return "SUM";
    case Aggregate::kCount:
      return "COUNT";
    case Aggregate::kAvg:
      return "AVG";
  }
  return "?";
}

std::string QueryToString(const Query& query) {
  std::string out = AggregateName(query.aggregate);
  if (query.group_by.has_value()) {
    out += " GROUP BY d" + std::to_string(query.group_by->dim);
    if (query.group_by->group_size != 1) {
      out += " SIZE " + std::to_string(query.group_by->group_size);
    }
  }
  bool first = true;
  for (const Predicate& pred : query.predicates) {
    out += first ? " WHERE " : " AND ";
    first = false;
    out += "d" + std::to_string(pred.dim);
    if (pred.lo == pred.hi) {
      out += " = " + std::to_string(pred.lo);
    } else {
      out += " IN [" + std::to_string(pred.lo) + ", " +
             std::to_string(pred.hi) + "]";
    }
  }
  return out;
}

std::string WriteToString(const WriteStatement& write) {
  // A write statement carries one verb for every point, so a mixed-kind
  // batch (possible to build in code, impossible to parse) renders its
  // first mutation's verb; parse→print→parse round-trips are exact for
  // anything the parser can produce.
  std::string out = write.mutations.empty() ||
                            write.mutations.front().kind == MutationKind::kAdd
                        ? "ADD"
                        : "SET";
  bool first = true;
  for (const Mutation& m : write.mutations) {
    out += first ? " AT [" : ", AT [";
    first = false;
    for (size_t i = 0; i < m.cell.size(); ++i) {
      if (i > 0) out += ", ";
      out += std::to_string(m.cell[i]);
    }
    out += "] = " + std::to_string(m.delta);
  }
  return out;
}

std::string StatementToString(const Statement& statement) {
  if (statement.query.has_value()) return QueryToString(*statement.query);
  if (statement.write.has_value()) return WriteToString(*statement.write);
  return "";
}

}  // namespace ddc
