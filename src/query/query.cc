#include "query/query.h"

namespace ddc {

const char* AggregateName(Aggregate aggregate) {
  switch (aggregate) {
    case Aggregate::kSum:
      return "SUM";
    case Aggregate::kCount:
      return "COUNT";
    case Aggregate::kAvg:
      return "AVG";
  }
  return "?";
}

std::string QueryToString(const Query& query) {
  std::string out = AggregateName(query.aggregate);
  if (query.group_by.has_value()) {
    out += " GROUP BY d" + std::to_string(query.group_by->dim);
    if (query.group_by->group_size != 1) {
      out += " SIZE " + std::to_string(query.group_by->group_size);
    }
  }
  bool first = true;
  for (const Predicate& pred : query.predicates) {
    out += first ? " WHERE " : " AND ";
    first = false;
    out += "d" + std::to_string(pred.dim);
    if (pred.lo == pred.hi) {
      out += " = " + std::to_string(pred.lo);
    } else {
      out += " IN [" + std::to_string(pred.lo) + ", " +
             std::to_string(pred.hi) + "]";
    }
  }
  return out;
}

std::string WriteToString(const WriteStatement& write) {
  // A write statement carries one verb for every target, so a mixed-verb
  // batch (possible to build in code, impossible to parse) renders its
  // first mutation's verb; parse→print→parse round-trips are exact for
  // anything the parser can produce. Point and range targets may mix
  // freely under one verb (kAdd with kRangeAdd, kSet with kRangeSet).
  const bool is_set =
      !write.mutations.empty() &&
      (write.mutations.front().kind == MutationKind::kSet ||
       write.mutations.front().kind == MutationKind::kRangeSet);
  std::string out = is_set ? "SET" : "ADD";
  auto append_coords = [&out](const Cell& cell) {
    for (size_t i = 0; i < cell.size(); ++i) {
      if (i > 0) out += ", ";
      out += std::to_string(cell[i]);
    }
  };
  bool first = true;
  for (const Mutation& m : write.mutations) {
    out += first ? " " : ", ";
    first = false;
    if (m.is_range()) {
      out += std::to_string(m.delta) + " IN [";
      append_coords(m.cell);
      out += " .. ";
      append_coords(m.hi);
      out += "]";
    } else {
      out += "AT [";
      append_coords(m.cell);
      out += "] = " + std::to_string(m.delta);
    }
  }
  return out;
}

std::string StatementToString(const Statement& statement) {
  std::string inner;
  if (statement.query.has_value()) {
    inner = QueryToString(*statement.query);
  } else if (statement.write.has_value()) {
    inner = WriteToString(*statement.write);
  } else {
    return "";
  }
  switch (statement.explain) {
    case ExplainMode::kNone:
      return inner;
    case ExplainMode::kPlan:
      return "EXPLAIN " + inner;
    case ExplainMode::kAnalyze:
      return "EXPLAIN ANALYZE " + inner;
  }
  return inner;
}

}  // namespace ddc
