#include "query/executor.h"

#include <algorithm>
#include <sstream>

#include "common/kernels.h"
#include "common/table_printer.h"
#include "obs/flight_recorder.h"
#include "obs/introspect.h"
#include "obs/trace.h"
#include "olap/rollup.h"
#include "query/parser.h"

namespace ddc {

namespace {

obs::Histogram& ExecNsHist() {
  static obs::Histogram& hist =
      *obs::MetricsRegistry::Default().GetHistogram("query.exec.ns");
  return hist;
}

obs::Histogram& ResultRowsHist() {
  static obs::Histogram& hist =
      *obs::MetricsRegistry::Default().GetHistogram("query.result.rows");
  return hist;
}

obs::Histogram& WriteMutationsHist() {
  static obs::Histogram& hist =
      *obs::MetricsRegistry::Default().GetHistogram("query.write.mutations");
  return hist;
}

// Builds the query box over [lo, hi] (the structure's domain) from the
// predicates. Returns false with *error on a bad dimension or an empty
// intersection.
bool BuildBox(const Query& query, int dims, const Cell& lo, const Cell& hi,
              Box* box, std::string* error) {
  box->lo = lo;
  box->hi = hi;
  for (const Predicate& pred : query.predicates) {
    if (pred.dim < 0 || pred.dim >= dims) {
      *error = "query references d" + std::to_string(pred.dim) +
               " but the cube has " + std::to_string(dims) + " dimensions";
      return false;
    }
    size_t ud = static_cast<size_t>(pred.dim);
    box->lo[ud] = std::max(box->lo[ud], pred.lo);
    box->hi[ud] = std::min(box->hi[ud], pred.hi);
  }
  if (query.group_by.has_value() &&
      (query.group_by->dim < 0 || query.group_by->dim >= dims)) {
    *error = "GROUP BY references d" + std::to_string(query.group_by->dim) +
             " but the cube has " + std::to_string(dims) + " dimensions";
    return false;
  }
  return true;
}

// Aligned group slices of `box` along the GROUP BY dimension — the per-row
// boxes a grouped query resolves. A query with no GROUP BY is one slice
// (the box itself). Shared by execution and EXPLAIN so the planned and
// executed decompositions always agree.
std::vector<Box> BuildSlices(const Query& query, const Box& box) {
  std::vector<Box> slices;
  if (!query.group_by.has_value()) {
    slices.push_back(box);
    return slices;
  }
  const int64_t size = query.group_by->group_size;
  const size_t ud = static_cast<size_t>(query.group_by->dim);
  auto floor_div = [](Coord a, Coord b) {
    Coord q = a / b;
    if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
    return q;
  };
  Coord group_start = floor_div(box.lo[ud], size) * size;
  while (group_start <= box.hi[ud]) {
    const Coord group_end = group_start + size - 1;
    Box slice = box;
    slice.lo[ud] = std::max(box.lo[ud], group_start);
    slice.hi[ud] = std::min(box.hi[ud], group_end);
    slices.push_back(std::move(slice));
    group_start = group_end + 1;
  }
  return slices;
}

QueryResultRow MakeRow(Aggregate aggregate, Coord start, Coord end,
                       int64_t sum, int64_t count) {
  QueryResultRow row;
  row.group_start = start;
  row.group_end = end;
  row.sum = sum;
  row.count = count;
  switch (aggregate) {
    case Aggregate::kSum:
      row.value = static_cast<double>(sum);
      break;
    case Aggregate::kCount:
      row.value = static_cast<double>(count);
      break;
    case Aggregate::kAvg:
      if (count > 0) {
        row.value = static_cast<double>(sum) / static_cast<double>(count);
      }
      break;
  }
  return row;
}

}  // namespace

QueryResult ExecuteQuery(const Query& query, const MeasureCube& cube) {
  QueryResult result;
  obs::TraceSpan span("query.execute", 0, 0, &ExecNsHist());
  result.aggregate = query.aggregate;
  const DynamicDataCube& sum_cube = cube.sum_cube();
  Box box;
  if (!BuildBox(query, cube.dims(), sum_cube.DomainLo(), sum_cube.DomainHi(),
                &box, &result.error)) {
    return result;
  }
  if (box.IsEmpty()) {
    result.ok = true;  // Legal query over an empty region: no rows.
    return result;
  }

  if (!query.group_by.has_value()) {
    result.rows.push_back(MakeRow(query.aggregate, box.lo[0], box.hi[0],
                                  cube.RangeSum(box), cube.RangeCount(box)));
    result.ok = true;
    return result;
  }

  const std::vector<RollupRow> groups =
      GroupBy(cube, box, query.group_by->dim, query.group_by->group_size);
  result.rows.reserve(groups.size());
  for (const RollupRow& group : groups) {
    result.rows.push_back(MakeRow(query.aggregate, group.group_start,
                                  group.group_end, group.sum, group.count));
  }
  if (obs::Enabled()) {
    ResultRowsHist().Record(static_cast<int64_t>(result.rows.size()));
    span.set_arg0(static_cast<int64_t>(result.rows.size()));
  }
  result.ok = true;
  return result;
}

namespace {

// The SUM-only execution body, shared by the bare DynamicDataCube and the
// CachedCube overloads — one batched RangeSumBatch per statement either
// way, so cached and uncached execution decompose identically (the
// differential fuzz harness depends on that).
template <typename CubeT>
QueryResult ExecuteSumQuery(const Query& query, const CubeT& cube) {
  QueryResult result;
  obs::TraceSpan span("query.execute", 0, 0, &ExecNsHist());
  result.aggregate = query.aggregate;
  if (query.aggregate != Aggregate::kSum) {
    result.error = "this cube stores sums only; COUNT/AVG need a MeasureCube";
    return result;
  }
  Box box;
  if (!BuildBox(query, cube.dims(), cube.DomainLo(), cube.DomainHi(), &box,
                &result.error)) {
    return result;
  }
  if (box.IsEmpty()) {
    result.ok = true;
    return result;
  }
  // One batched call for the whole report, grouped or not: adjacent group
  // slices share corner prefix sums, which RangeSumBatch deduplicates, and
  // an ungrouped query is simply a one-slice batch — so every executor read
  // pays (and accounts) the same corner-decomposition path.
  const std::vector<Box> slices = BuildSlices(query, box);
  std::vector<int64_t> sums(slices.size());
  cube.RangeSumBatch(slices, sums);
  result.rows.reserve(slices.size());
  const size_t ud = query.group_by.has_value()
                        ? static_cast<size_t>(query.group_by->dim)
                        : 0;
  for (size_t i = 0; i < slices.size(); ++i) {
    result.rows.push_back(MakeRow(Aggregate::kSum, slices[i].lo[ud],
                                  slices[i].hi[ud], sums[i], 0));
  }
  if (obs::Enabled()) {
    ResultRowsHist().Record(static_cast<int64_t>(result.rows.size()));
    span.set_arg0(static_cast<int64_t>(result.rows.size()));
  }
  result.ok = true;
  return result;
}

}  // namespace

QueryResult ExecuteQuery(const Query& query, const DynamicDataCube& cube) {
  return ExecuteSumQuery(query, cube);
}

QueryResult ExecuteQuery(const Query& query, const CachedCube& cube) {
  return ExecuteSumQuery(query, cube);
}

QueryResult ExecuteWrite(const WriteStatement& write, CubeInterface* cube) {
  QueryResult result;
  result.is_write = true;
  obs::TraceSpan span("query.write",
                      static_cast<int64_t>(write.mutations.size()));
  // Validate up front so the error can name the offending arity; ApplyBatch
  // itself rejects malformed batches too (second check below), so either
  // way a bad statement is an error result, never an abort.
  const size_t d = static_cast<size_t>(cube->dims());
  for (const Mutation& m : write.mutations) {
    if (m.cell.size() != d) {
      result.error = "write target has " + std::to_string(m.cell.size()) +
                     " coordinates but the cube has " + std::to_string(d) +
                     " dimensions";
      return result;
    }
    if (m.is_range() && m.hi.size() != d) {
      result.error = "range write's high corner has " +
                     std::to_string(m.hi.size()) +
                     " coordinates but the cube has " + std::to_string(d) +
                     " dimensions";
      return result;
    }
  }
  if (!cube->ApplyBatch(write.mutations)) {
    result.error = "malformed write batch rejected by the cube";
    return result;
  }
  result.mutations_applied = static_cast<int64_t>(write.mutations.size());
  if (obs::Enabled()) WriteMutationsHist().Record(result.mutations_applied);
  result.ok = true;
  return result;
}

namespace {

template <typename CubeT>
QueryResult RunQueryImpl(const std::string& text, const CubeT& cube) {
  std::string error;
  const std::optional<Query> query = ParseQuery(text, &error);
  if (!query.has_value()) {
    QueryResult result;
    result.error = "parse error: " + error;
    return result;
  }
  return ExecuteQuery(*query, cube);
}

}  // namespace

QueryResult RunQuery(const std::string& text, const MeasureCube& cube) {
  return RunQueryImpl(text, cube);
}

QueryResult RunQuery(const std::string& text, const DynamicDataCube& cube) {
  return RunQueryImpl(text, cube);
}

bool QueryBox(const Query& query, const DynamicDataCube& cube, Box* box,
              std::string* error) {
  return BuildBox(query, cube.dims(), cube.DomainLo(), cube.DomainHi(), box,
                  error);
}

namespace {

// Appends the executed-cost section of EXPLAIN ANALYZE. Every count is the
// ledger's exact value — the numbers a differential test can equate with
// the metrics-registry deltas for the same statement.
void AppendLedger(const obs::CostLedger& ledger, std::ostream& os) {
  os << "executed:\n"
     << "  nodes visited: " << ledger.nodes_visited << "\n"
     << "  values read: " << ledger.values_read << "\n"
     << "  values written: " << ledger.values_written << "\n"
     << "  face lookups: " << ledger.face_lookups << "\n"
     << "  corner terms: " << ledger.corner_terms << "\n"
     << "  corners deduped: " << ledger.corners_deduped << "\n"
     << "  unique corners: " << ledger.unique_corners << "\n"
     << "  overlay trees: " << ledger.overlay_terms << "\n"
     << "  tree depth: " << ledger.tree_depth << "\n"
     << "  shard groups: " << ledger.shard_groups << "\n"
     << "  shard subqueries: " << ledger.shard_subqueries << "\n";
  if (ledger.cache_probes > 0) {
    // Only cache-enabled execution probes; bare cubes keep the golden
    // EXPLAIN ANALYZE output unchanged.
    os << "  cache probes: " << ledger.cache_probes << "\n"
       << "  cache hits: " << ledger.cache_hits << "\n";
  }
  os << "timing:\n"
     << "  parse ns: " << ledger.parse_ns << "\n"
     << "  plan ns: " << ledger.plan_ns << "\n"
     << "  exec ns: " << ledger.exec_ns << "\n";
}

// Renders the write half of EXPLAIN, shared by the bare-cube and cached
// overloads — pure planning (the same common/mutation.h fold ApplyBatch
// uses); nothing is applied. Returns false with result->error set on an
// arity mismatch.
bool AppendWritePlan(const WriteStatement& write, int dims, bool analyze,
                     std::ostream& os, QueryResult* result) {
  const bool is_set = !write.mutations.empty() &&
                      (write.mutations.front().kind == MutationKind::kSet ||
                       write.mutations.front().kind == MutationKind::kRangeSet);
  os << "kind: write (" << (is_set ? "SET" : "ADD") << ")\n";
  int64_t points = 0;
  int64_t ranges = 0;
  for (const Mutation& m : write.mutations) {
    if (m.cell.size() != static_cast<size_t>(dims) ||
        (m.is_range() && m.hi.size() != static_cast<size_t>(dims))) {
      result->error = "write target arity does not match cube dims=" +
                      std::to_string(dims);
      return false;
    }
    ++(m.is_range() ? ranges : points);
  }
  // Plan the coalesce program the executed batch would run (the same
  // common/mutation.h fold ApplyBatch uses); nothing is applied.
  int64_t steps = 0;
  int64_t coalesced_cells = 0;
  int64_t barriers = 0;
  for (const CoalescedStep& step : BuildCoalesceProgram(write.mutations)) {
    ++steps;
    coalesced_cells += static_cast<int64_t>(step.points.size());
    if (step.has_range) ++barriers;
  }
  os << "plan:\n"
     << "  mutations: " << write.mutations.size() << " (points: " << points
     << ", ranges: " << ranges << ")\n"
     << "  coalesce steps: " << steps << "\n"
     << "  coalesced point cells: " << coalesced_cells << "\n"
     << "  range barriers: " << barriers << "\n";
  os << "note: writes are planned only; EXPLAIN" << (analyze ? " ANALYZE" : "")
     << " does not mutate the cube\n";
  return true;
}

}  // namespace

QueryResult ExplainStatement(const Statement& statement,
                             const DynamicDataCube& cube, int64_t parse_ns) {
  QueryResult result;
  result.is_explain = true;
  const bool analyze = statement.explain == ExplainMode::kAnalyze;
  const uint64_t plan_start = obs::NowNanos();
  Statement inner = statement;
  inner.explain = ExplainMode::kNone;

  std::ostringstream os;
  os << (analyze ? "EXPLAIN ANALYZE\n" : "EXPLAIN\n");
  os << "statement: " << StatementToString(inner) << "\n";
  os << "cube: dims=" << cube.dims() << " side=" << cube.side()
     << " domain=" << CellToString(cube.DomainLo()) << ".."
     << CellToString(cube.DomainHi()) << "\n";

  if (statement.query.has_value()) {
    const Query& query = *statement.query;
    result.aggregate = query.aggregate;
    os << "kind: read (" << AggregateName(query.aggregate) << ")\n";
    if (query.aggregate != Aggregate::kSum) {
      result.error =
          "this cube stores sums only; COUNT/AVG need a MeasureCube";
      return result;
    }
    Box box;
    if (!QueryBox(query, cube, &box, &result.error)) return result;
    std::vector<Box> slices;
    if (!box.IsEmpty()) slices = BuildSlices(query, box);
    const DynamicDataCube::RangeSumPlan plan =
        cube.PlanRangeSumBatch(slices);
    os << "plan:\n"
       << "  rows: " << slices.size() << "\n"
       << "  boxes after clipping: " << plan.ranges << "\n"
       << "  corner terms: " << plan.corner_terms << "\n"
       << "  corners deduped: " << plan.corners_deduped << "\n"
       << "  unique corners: " << plan.unique_corners << "\n"
       << "  overlay trees: " << plan.overlay_trees << "\n"
       << "  tree depth: " << plan.descent_levels << "\n"
       << "  kernel path: " << (kernels::UseScalar() ? "scalar" : "simd")
       << "\n";
    if (analyze) {
      obs::CostLedger ledger;
      QueryResult executed;
      const uint64_t exec_start = obs::NowNanos();
      {
        obs::ScopedCostLedger scope(&ledger);
        executed = ExecuteQuery(query, cube);
      }
      ledger.exec_ns = static_cast<int64_t>(obs::NowNanos() - exec_start);
      ledger.parse_ns = parse_ns;
      ledger.plan_ns = static_cast<int64_t>(exec_start - plan_start);
      if (!executed.ok) {
        result.error = executed.error;
        return result;
      }
      AppendLedger(ledger, os);
      os << "result rows: " << executed.rows.size() << "\n";
    }
  } else if (statement.write.has_value()) {
    if (!AppendWritePlan(*statement.write, cube.dims(), analyze, os,
                         &result)) {
      return result;
    }
  } else {
    result.error = "empty statement";
    return result;
  }

  result.explain_text = os.str();
  result.ok = true;
  return result;
}

QueryResult ExplainStatement(const Statement& statement,
                             const CachedCube& cube, int64_t parse_ns) {
  QueryResult result;
  result.is_explain = true;
  const bool analyze = statement.explain == ExplainMode::kAnalyze;
  const uint64_t plan_start = obs::NowNanos();
  Statement inner = statement;
  inner.explain = ExplainMode::kNone;

  std::ostringstream os;
  os << (analyze ? "EXPLAIN ANALYZE\n" : "EXPLAIN\n");
  os << "statement: " << StatementToString(inner) << "\n";
  os << "cube: cached(" << cube.inner()->name() << ") dims=" << cube.dims()
     << " domain=" << CellToString(cube.DomainLo()) << ".."
     << CellToString(cube.DomainHi()) << "\n";
  const CacheStats stats = cube.Stats();
  os << "cache: entries=" << stats.entries
     << " pinned=" << stats.pinned_entries << " hits=" << stats.hits
     << " misses=" << stats.misses << "\n";

  if (statement.query.has_value()) {
    const Query& query = *statement.query;
    result.aggregate = query.aggregate;
    os << "kind: read (" << AggregateName(query.aggregate) << ")\n";
    if (query.aggregate != Aggregate::kSum) {
      result.error =
          "this cube stores sums only; COUNT/AVG need a MeasureCube";
      return result;
    }
    Box box;
    if (!BuildBox(query, cube.dims(), cube.DomainLo(), cube.DomainHi(), &box,
                  &result.error)) {
      return result;
    }
    std::vector<Box> slices;
    if (!box.IsEmpty()) slices = BuildSlices(query, box);
    if (const DynamicDataCube* ddc = cube.inner_ddc()) {
      // The corner plan describes the *miss* path: a resident entry skips
      // the descent entirely, which ANALYZE's cache probes/hits report.
      const DynamicDataCube::RangeSumPlan plan =
          ddc->PlanRangeSumBatch(slices);
      os << "plan:\n"
         << "  rows: " << slices.size() << "\n"
         << "  boxes after clipping: " << plan.ranges << "\n"
         << "  corner terms: " << plan.corner_terms << "\n"
         << "  corners deduped: " << plan.corners_deduped << "\n"
         << "  unique corners: " << plan.unique_corners << "\n"
         << "  overlay trees: " << plan.overlay_trees << "\n"
         << "  tree depth: " << plan.descent_levels << "\n"
         << "  kernel path: " << (kernels::UseScalar() ? "scalar" : "simd")
         << "\n";
    } else {
      os << "plan:\n"
         << "  rows: " << slices.size() << "\n"
         << "  backend: " << cube.inner()->name()
         << " (no corner planner)\n";
    }
    if (analyze) {
      obs::CostLedger ledger;
      QueryResult executed;
      const uint64_t exec_start = obs::NowNanos();
      {
        obs::ScopedCostLedger scope(&ledger);
        // An explained statement must never populate the cache: probes are
        // counted (the ledger lines below) but misses are discarded.
        CachedCube::ScopedNoPopulate no_populate;
        executed = ExecuteQuery(query, cube);
      }
      ledger.exec_ns = static_cast<int64_t>(obs::NowNanos() - exec_start);
      ledger.parse_ns = parse_ns;
      ledger.plan_ns = static_cast<int64_t>(exec_start - plan_start);
      if (!executed.ok) {
        result.error = executed.error;
        return result;
      }
      AppendLedger(ledger, os);
      os << "result rows: " << executed.rows.size() << "\n";
    }
  } else if (statement.write.has_value()) {
    if (!AppendWritePlan(*statement.write, cube.dims(), analyze, os,
                         &result)) {
      return result;
    }
  } else {
    result.error = "empty statement";
    return result;
  }

  result.explain_text = os.str();
  result.ok = true;
  return result;
}

namespace {

// Shared statement driver: the bare-cube and cached paths differ only in
// which ExecuteQuery / ExplainStatement overloads resolve.
template <typename CubeT>
QueryResult RunStatementImpl(const std::string& text, CubeT* cube) {
  const uint64_t parse_start = obs::NowNanos();
  std::string error;
  const std::optional<Statement> statement = ParseStatement(text, &error);
  if (!statement.has_value()) {
    QueryResult result;
    result.error = "parse error: " + error;
    return result;
  }
  const int64_t parse_ns =
      static_cast<int64_t>(obs::NowNanos() - parse_start);

  if (statement->explain != ExplainMode::kNone) {
    QueryResult result = ExplainStatement(*statement, *cube, parse_ns);
    if (obs::Enabled()) {
      obs::FlightRecord record;
      record.kind = obs::FlightRecorder::kKindExplain;
      record.statement_hash = obs::HashStatement(text.data(), text.size());
      record.duration_ns =
          static_cast<int64_t>(obs::NowNanos() - parse_start);
      record.arg = result.ok ? 1 : 0;
      obs::FlightRecorder::Default().Record(record);
    }
    return result;
  }

  if (!obs::Enabled()) {
    // Zero-instrumentation path: no ledger, no flight record.
    if (statement->write.has_value()) {
      return ExecuteWrite(*statement->write, cube);
    }
    return ExecuteQuery(*statement->query, *cube);
  }

  obs::CostLedger ledger;
  QueryResult result;
  {
    obs::ScopedCostLedger scope(&ledger);
    result = statement->write.has_value()
                 ? ExecuteWrite(*statement->write, cube)
                 : ExecuteQuery(*statement->query, *cube);
  }
  obs::FlightRecord record;
  record.kind = statement->write.has_value()
                    ? obs::FlightRecorder::kKindWrite
                    : obs::FlightRecorder::kKindRead;
  record.statement_hash = obs::HashStatement(text.data(), text.size());
  record.nodes_visited = ledger.nodes_visited;
  record.values_read = ledger.values_read;
  record.values_written = ledger.values_written;
  record.corner_terms = ledger.corner_terms;
  record.duration_ns = static_cast<int64_t>(obs::NowNanos() - parse_start);
  record.arg = result.is_write ? result.mutations_applied
                               : static_cast<int64_t>(result.rows.size());
  obs::FlightRecorder::Default().Record(record);
  return result;
}

}  // namespace

QueryResult RunStatement(const std::string& text, DynamicDataCube* cube) {
  return RunStatementImpl(text, cube);
}

QueryResult RunStatement(const std::string& text, CachedCube* cube) {
  return RunStatementImpl(text, cube);
}

std::string FormatResult(const QueryResult& result) {
  if (!result.ok) return "error: " + result.error + "\n";
  if (result.is_explain) return result.explain_text;
  if (result.is_write) {
    return "applied " + std::to_string(result.mutations_applied) +
           " mutation" + (result.mutations_applied == 1 ? "" : "s") + "\n";
  }
  TablePrinter table({"group", AggregateName(result.aggregate)});
  for (const QueryResultRow& row : result.rows) {
    std::string group =
        (row.group_start == row.group_end)
            ? std::to_string(row.group_start)
            : "[" + std::to_string(row.group_start) + ", " +
                  std::to_string(row.group_end) + "]";
    std::string value = "-";
    if (row.value.has_value()) {
      value = (result.aggregate == Aggregate::kAvg)
                  ? TablePrinter::FormatDouble(*row.value, 3)
                  : TablePrinter::FormatInt(static_cast<int64_t>(*row.value));
    }
    table.AddRow({group, value});
  }
  return table.ToString();
}

}  // namespace ddc
