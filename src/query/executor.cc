#include "query/executor.h"

#include <algorithm>

#include "common/table_printer.h"
#include "obs/trace.h"
#include "olap/rollup.h"
#include "query/parser.h"

namespace ddc {

namespace {

obs::Histogram& ExecNsHist() {
  static obs::Histogram& hist =
      *obs::MetricsRegistry::Default().GetHistogram("query.exec.ns");
  return hist;
}

obs::Histogram& ResultRowsHist() {
  static obs::Histogram& hist =
      *obs::MetricsRegistry::Default().GetHistogram("query.result.rows");
  return hist;
}

obs::Histogram& WriteMutationsHist() {
  static obs::Histogram& hist =
      *obs::MetricsRegistry::Default().GetHistogram("query.write.mutations");
  return hist;
}

// Builds the query box over [lo, hi] (the structure's domain) from the
// predicates. Returns false with *error on a bad dimension or an empty
// intersection.
bool BuildBox(const Query& query, int dims, const Cell& lo, const Cell& hi,
              Box* box, std::string* error) {
  box->lo = lo;
  box->hi = hi;
  for (const Predicate& pred : query.predicates) {
    if (pred.dim < 0 || pred.dim >= dims) {
      *error = "query references d" + std::to_string(pred.dim) +
               " but the cube has " + std::to_string(dims) + " dimensions";
      return false;
    }
    size_t ud = static_cast<size_t>(pred.dim);
    box->lo[ud] = std::max(box->lo[ud], pred.lo);
    box->hi[ud] = std::min(box->hi[ud], pred.hi);
  }
  if (query.group_by.has_value() &&
      (query.group_by->dim < 0 || query.group_by->dim >= dims)) {
    *error = "GROUP BY references d" + std::to_string(query.group_by->dim) +
             " but the cube has " + std::to_string(dims) + " dimensions";
    return false;
  }
  return true;
}

QueryResultRow MakeRow(Aggregate aggregate, Coord start, Coord end,
                       int64_t sum, int64_t count) {
  QueryResultRow row;
  row.group_start = start;
  row.group_end = end;
  row.sum = sum;
  row.count = count;
  switch (aggregate) {
    case Aggregate::kSum:
      row.value = static_cast<double>(sum);
      break;
    case Aggregate::kCount:
      row.value = static_cast<double>(count);
      break;
    case Aggregate::kAvg:
      if (count > 0) {
        row.value = static_cast<double>(sum) / static_cast<double>(count);
      }
      break;
  }
  return row;
}

}  // namespace

QueryResult ExecuteQuery(const Query& query, const MeasureCube& cube) {
  QueryResult result;
  obs::TraceSpan span("query.execute", 0, 0, &ExecNsHist());
  result.aggregate = query.aggregate;
  const DynamicDataCube& sum_cube = cube.sum_cube();
  Box box;
  if (!BuildBox(query, cube.dims(), sum_cube.DomainLo(), sum_cube.DomainHi(),
                &box, &result.error)) {
    return result;
  }
  if (box.IsEmpty()) {
    result.ok = true;  // Legal query over an empty region: no rows.
    return result;
  }

  if (!query.group_by.has_value()) {
    result.rows.push_back(MakeRow(query.aggregate, box.lo[0], box.hi[0],
                                  cube.RangeSum(box), cube.RangeCount(box)));
    result.ok = true;
    return result;
  }

  const std::vector<RollupRow> groups =
      GroupBy(cube, box, query.group_by->dim, query.group_by->group_size);
  result.rows.reserve(groups.size());
  for (const RollupRow& group : groups) {
    result.rows.push_back(MakeRow(query.aggregate, group.group_start,
                                  group.group_end, group.sum, group.count));
  }
  if (obs::Enabled()) {
    ResultRowsHist().Record(static_cast<int64_t>(result.rows.size()));
    span.set_arg0(static_cast<int64_t>(result.rows.size()));
  }
  result.ok = true;
  return result;
}

QueryResult ExecuteQuery(const Query& query, const DynamicDataCube& cube) {
  QueryResult result;
  obs::TraceSpan span("query.execute", 0, 0, &ExecNsHist());
  result.aggregate = query.aggregate;
  if (query.aggregate != Aggregate::kSum) {
    result.error = "this cube stores sums only; COUNT/AVG need a MeasureCube";
    return result;
  }
  Box box;
  if (!BuildBox(query, cube.dims(), cube.DomainLo(), cube.DomainHi(), &box,
                &result.error)) {
    return result;
  }
  if (box.IsEmpty()) {
    result.ok = true;
    return result;
  }
  if (!query.group_by.has_value()) {
    const int64_t sum = cube.RangeSum(box);
    result.rows.push_back(
        MakeRow(Aggregate::kSum, box.lo[0], box.hi[0], sum, 0));
    result.ok = true;
    return result;
  }
  // Grouped SUM over the bare cube: slice per aligned group.
  const int dim = query.group_by->dim;
  const int64_t size = query.group_by->group_size;
  const size_t ud = static_cast<size_t>(dim);
  auto floor_div = [](Coord a, Coord b) {
    Coord q = a / b;
    if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
    return q;
  };
  // One batched call for the whole report: adjacent group slices share
  // corner prefix sums, which RangeSumBatch deduplicates.
  std::vector<Box> slices;
  Coord group_start = floor_div(box.lo[ud], size) * size;
  while (group_start <= box.hi[ud]) {
    const Coord group_end = group_start + size - 1;
    Box slice = box;
    slice.lo[ud] = std::max(box.lo[ud], group_start);
    slice.hi[ud] = std::min(box.hi[ud], group_end);
    slices.push_back(std::move(slice));
    group_start = group_end + 1;
  }
  std::vector<int64_t> sums(slices.size());
  cube.RangeSumBatch(slices, sums);
  result.rows.reserve(slices.size());
  for (size_t i = 0; i < slices.size(); ++i) {
    result.rows.push_back(MakeRow(Aggregate::kSum, slices[i].lo[ud],
                                  slices[i].hi[ud], sums[i], 0));
  }
  if (obs::Enabled()) {
    ResultRowsHist().Record(static_cast<int64_t>(result.rows.size()));
    span.set_arg0(static_cast<int64_t>(result.rows.size()));
  }
  result.ok = true;
  return result;
}

QueryResult ExecuteWrite(const WriteStatement& write, CubeInterface* cube) {
  QueryResult result;
  result.is_write = true;
  obs::TraceSpan span("query.write",
                      static_cast<int64_t>(write.mutations.size()));
  // Validate up front so the error can name the offending arity; ApplyBatch
  // itself rejects malformed batches too (second check below), so either
  // way a bad statement is an error result, never an abort.
  const size_t d = static_cast<size_t>(cube->dims());
  for (const Mutation& m : write.mutations) {
    if (m.cell.size() != d) {
      result.error = "write target has " + std::to_string(m.cell.size()) +
                     " coordinates but the cube has " + std::to_string(d) +
                     " dimensions";
      return result;
    }
    if (m.is_range() && m.hi.size() != d) {
      result.error = "range write's high corner has " +
                     std::to_string(m.hi.size()) +
                     " coordinates but the cube has " + std::to_string(d) +
                     " dimensions";
      return result;
    }
  }
  if (!cube->ApplyBatch(write.mutations)) {
    result.error = "malformed write batch rejected by the cube";
    return result;
  }
  result.mutations_applied = static_cast<int64_t>(write.mutations.size());
  if (obs::Enabled()) WriteMutationsHist().Record(result.mutations_applied);
  result.ok = true;
  return result;
}

namespace {

template <typename CubeT>
QueryResult RunQueryImpl(const std::string& text, const CubeT& cube) {
  std::string error;
  const std::optional<Query> query = ParseQuery(text, &error);
  if (!query.has_value()) {
    QueryResult result;
    result.error = "parse error: " + error;
    return result;
  }
  return ExecuteQuery(*query, cube);
}

}  // namespace

QueryResult RunQuery(const std::string& text, const MeasureCube& cube) {
  return RunQueryImpl(text, cube);
}

QueryResult RunQuery(const std::string& text, const DynamicDataCube& cube) {
  return RunQueryImpl(text, cube);
}

QueryResult RunStatement(const std::string& text, DynamicDataCube* cube) {
  std::string error;
  const std::optional<Statement> statement = ParseStatement(text, &error);
  if (!statement.has_value()) {
    QueryResult result;
    result.error = "parse error: " + error;
    return result;
  }
  if (statement->write.has_value()) {
    return ExecuteWrite(*statement->write, cube);
  }
  return ExecuteQuery(*statement->query, *cube);
}

std::string FormatResult(const QueryResult& result) {
  if (!result.ok) return "error: " + result.error + "\n";
  if (result.is_write) {
    return "applied " + std::to_string(result.mutations_applied) +
           " mutation" + (result.mutations_applied == 1 ? "" : "s") + "\n";
  }
  TablePrinter table({"group", AggregateName(result.aggregate)});
  for (const QueryResultRow& row : result.rows) {
    std::string group =
        (row.group_start == row.group_end)
            ? std::to_string(row.group_start)
            : "[" + std::to_string(row.group_start) + ", " +
                  std::to_string(row.group_end) + "]";
    std::string value = "-";
    if (row.value.has_value()) {
      value = (result.aggregate == Aggregate::kAvg)
                  ? TablePrinter::FormatDouble(*row.value, 3)
                  : TablePrinter::FormatInt(static_cast<int64_t>(*row.value));
    }
    table.AddRow({group, value});
  }
  return table.ToString();
}

}  // namespace ddc
