#include "query/parser.h"

#include <cctype>
#include <cstdlib>
#include <vector>

namespace ddc {

namespace {

struct Token {
  std::string text;   // Upper-cased for keywords; verbatim otherwise.
  std::string raw;    // Original spelling, for error messages.
  size_t position;    // Byte offset in the input.
};

// Splits on whitespace; brackets, commas and '=' are their own tokens. A
// run of dots is one token, so "[3..7]" and "[3 .. 7]" both yield the range
// separator ".." (a lone "." or "..." token fails parsing with a clean
// error instead of gluing onto a number).
std::vector<Token> Tokenize(const std::string& text) {
  std::vector<Token> tokens;
  size_t i = 0;
  while (i < text.size()) {
    if (std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
      continue;
    }
    const char c = text[i];
    if (c == '[' || c == ']' || c == ',' || c == '=') {
      tokens.push_back(Token{std::string(1, c), std::string(1, c), i});
      ++i;
      continue;
    }
    if (c == '.') {
      size_t start = i;
      while (i < text.size() && text[i] == '.') ++i;
      std::string dots = text.substr(start, i - start);
      tokens.push_back(Token{dots, dots, start});
      continue;
    }
    size_t start = i;
    while (i < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[i])) &&
           text[i] != '[' && text[i] != ']' && text[i] != ',' &&
           text[i] != '=' && text[i] != '.') {
      ++i;
    }
    std::string raw = text.substr(start, i - start);
    std::string upper = raw;
    for (char& ch : upper) {
      ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
    }
    tokens.push_back(Token{upper, raw, start});
  }
  return tokens;
}

class Parser {
 public:
  Parser(std::vector<Token> tokens, std::string* error)
      : tokens_(std::move(tokens)), error_(error) {}

  std::optional<Statement> ParseStatement() {
    ExplainMode explain = ExplainMode::kNone;
    if (!AtEnd() && Peek().text == "EXPLAIN") {
      Next();
      explain = ExplainMode::kPlan;
      if (!AtEnd() && Peek().text == "ANALYZE") {
        Next();
        explain = ExplainMode::kAnalyze;
      }
      if (AtEnd()) return Fail("expected a statement after EXPLAIN");
    }
    if (!AtEnd() && (Peek().text == "ADD" || Peek().text == "SET")) {
      std::optional<WriteStatement> write = ParseWrite();
      if (!write.has_value()) return std::nullopt;
      Statement statement;
      statement.write = std::move(write);
      statement.explain = explain;
      return statement;
    }
    std::optional<Query> query = Parse();
    if (!query.has_value()) return std::nullopt;
    Statement statement;
    statement.query = std::move(query);
    statement.explain = explain;
    return statement;
  }

  std::optional<Query> Parse() {
    Query query;
    // Aggregate.
    if (AtEnd()) return Fail("expected SUM, COUNT or AVG");
    const std::string head = Next().text;
    if (head == "SUM") {
      query.aggregate = Aggregate::kSum;
    } else if (head == "COUNT") {
      query.aggregate = Aggregate::kCount;
    } else if (head == "AVG" || head == "AVERAGE") {
      query.aggregate = Aggregate::kAvg;
    } else {
      return Fail("expected SUM, COUNT or AVG, got '" + Prev().raw + "'");
    }

    // Optional GROUP BY.
    if (!AtEnd() && Peek().text == "GROUP") {
      Next();
      if (AtEnd() || Next().text != "BY") return Fail("expected BY");
      GroupBySpec spec;
      if (!ParseDim(&spec.dim)) return std::nullopt;
      if (!AtEnd() && Peek().text == "SIZE") {
        Next();
        int64_t size = 0;
        if (!ParseInt(&size)) return std::nullopt;
        if (size < 1) return Fail("GROUP BY SIZE must be >= 1");
        spec.group_size = size;
      }
      query.group_by = spec;
    }

    // Optional WHERE.
    if (!AtEnd() && Peek().text == "WHERE") {
      Next();
      while (true) {
        Predicate pred;
        if (!ParseDim(&pred.dim)) return std::nullopt;
        if (AtEnd()) return Fail("expected IN or = after dimension");
        const std::string op = Next().text;
        if (op == "IN") {
          if (!Expect("[")) return std::nullopt;
          int64_t lo = 0;
          int64_t hi = 0;
          if (!ParseInt(&lo)) return std::nullopt;
          if (!Expect(",")) return std::nullopt;
          if (!ParseInt(&hi)) return std::nullopt;
          if (!Expect("]")) return std::nullopt;
          if (lo > hi) return Fail("empty range: lo > hi");
          pred.lo = lo;
          pred.hi = hi;
        } else if (op == "=") {
          int64_t v = 0;
          if (!ParseInt(&v)) return std::nullopt;
          pred.lo = v;
          pred.hi = v;
        } else {
          return Fail("expected IN or =, got '" + Prev().raw + "'");
        }
        query.predicates.push_back(pred);
        if (AtEnd()) break;
        if (Peek().text != "AND") {
          return Fail("expected AND or end of query, got '" + Peek().raw +
                      "'");
        }
        Next();
      }
    }

    if (!AtEnd()) {
      return Fail("unexpected trailing token '" + Peek().raw + "'");
    }
    return query;
  }

 private:
  // write  := ("ADD" | "SET") target ("," target)*
  // target := "AT" "[" int ("," int)* "]" "=" int
  //         | int "IN" "[" int ("," int)* ".." int ("," int)* "]"
  // A point target carries the statement's verb (ADD → kAdd, SET → kSet); a
  // range target carries its range twin (kRangeAdd / kRangeSet). Inverted
  // bounds (lo > hi in any dimension) parse fine and denote the empty box —
  // a no-op write — mirroring the empty-box convention everywhere else.
  std::optional<WriteStatement> ParseWrite() {
    const bool is_set = Next().text == "SET";
    WriteStatement write;
    while (true) {
      if (AtEnd()) return Fail("expected AT or a range value");
      if (Peek().text == "AT") {
        Next();
        if (!Expect("[")) return std::nullopt;
        Cell cell;
        if (!ParseCoords(&cell)) return std::nullopt;
        if (!Expect("]")) return std::nullopt;
        if (!Expect("=")) return std::nullopt;
        int64_t value = 0;
        if (!ParseInt(&value)) return std::nullopt;
        write.mutations.push_back(
            Mutation{std::move(cell), value,
                     is_set ? MutationKind::kSet : MutationKind::kAdd});
      } else {
        int64_t value = 0;
        if (!ParseInt(&value)) return std::nullopt;
        if (!Expect("IN")) return std::nullopt;
        if (!Expect("[")) return std::nullopt;
        Cell lo;
        if (!ParseCoords(&lo)) return std::nullopt;
        if (!Expect("..")) return std::nullopt;
        Cell hi;
        if (!ParseCoords(&hi)) return std::nullopt;
        if (!Expect("]")) return std::nullopt;
        if (lo.size() != hi.size()) {
          return Fail("range corners have mismatched arity (" +
                      std::to_string(lo.size()) + " vs " +
                      std::to_string(hi.size()) + " coordinates)");
        }
        write.mutations.push_back(
            is_set ? MakeRangeSet(std::move(lo), std::move(hi), value)
                   : MakeRangeAdd(std::move(lo), std::move(hi), value));
      }
      if (AtEnd()) break;
      if (Peek().text != ",") {
        return Fail("expected ',' or end of statement, got '" + Peek().raw +
                    "'");
      }
      Next();
    }
    return write;
  }

  // Comma-separated integer list (at least one), e.g. "3, 4, 5".
  bool ParseCoords(Cell* cell) {
    while (true) {
      int64_t coord = 0;
      if (!ParseInt(&coord)) return false;
      cell->push_back(coord);
      if (!AtEnd() && Peek().text == ",") {
        Next();
        continue;
      }
      return true;
    }
  }

  bool AtEnd() const { return index_ >= tokens_.size(); }
  const Token& Peek() const { return tokens_[index_]; }
  const Token& Next() { return tokens_[index_++]; }
  const Token& Prev() const { return tokens_[index_ - 1]; }

  std::nullopt_t Fail(const std::string& message) {
    const size_t position =
        AtEnd() ? (tokens_.empty() ? 0 : tokens_.back().position)
                : Peek().position;
    *error_ = message + " (near byte " + std::to_string(position) + ")";
    return std::nullopt;
  }

  bool Expect(const std::string& token) {
    if (AtEnd() || Peek().text != token) {
      Fail("expected '" + token + "'");
      return false;
    }
    Next();
    return true;
  }

  bool ParseDim(int* dim) {
    if (AtEnd()) {
      Fail("expected dimension (d0, d1, ...)");
      return false;
    }
    const Token& token = Next();
    if (token.text.size() < 2 || token.text[0] != 'D') {
      Fail("expected dimension (d0, d1, ...), got '" + token.raw + "'");
      return false;
    }
    char* end = nullptr;
    const long value = std::strtol(token.text.c_str() + 1, &end, 10);
    if (*end != '\0' || value < 0 || value > 19) {
      Fail("bad dimension '" + token.raw + "'");
      return false;
    }
    *dim = static_cast<int>(value);
    return true;
  }

  bool ParseInt(int64_t* value) {
    if (AtEnd()) {
      Fail("expected integer");
      return false;
    }
    const Token& token = Next();
    char* end = nullptr;
    const long long parsed = std::strtoll(token.raw.c_str(), &end, 10);
    if (token.raw.empty() || *end != '\0') {
      Fail("expected integer, got '" + token.raw + "'");
      return false;
    }
    *value = parsed;
    return true;
  }

  std::vector<Token> tokens_;
  std::string* error_;
  size_t index_ = 0;
};

}  // namespace

std::optional<Query> ParseQuery(const std::string& text, std::string* error) {
  Parser parser(Tokenize(text), error);
  return parser.Parse();
}

std::optional<Statement> ParseStatement(const std::string& text,
                                        std::string* error) {
  Parser parser(Tokenize(text), error);
  return parser.ParseStatement();
}

}  // namespace ddc
