// A minimal range-aggregate query language over data cubes.
//
// Grammar (case-insensitive keywords, whitespace-separated):
//
//   query     := aggregate groupby? where?
//   aggregate := "SUM" | "COUNT" | "AVG"
//   groupby   := "GROUP" "BY" dim ("SIZE" int)?        -- default SIZE 1
//   where     := "WHERE" pred ("AND" pred)*
//   pred      := dim "IN" "[" int "," int "]"
//              | dim "=" int
//   dim       := "d" int                               -- d0, d1, ...
//
// Examples:
//   SUM WHERE d0 IN [27, 45] AND d1 IN [220, 222]
//   AVG GROUP BY d1 SIZE 7 WHERE d0 = 3
//   COUNT
//
// Dimensions without a predicate span the cube's whole domain. Repeated
// predicates on one dimension intersect. The language is deliberately tiny:
// every query maps to range aggregates (one per group), which is exactly
// what the underlying structures serve in polylog time.

#ifndef DDC_QUERY_QUERY_H_
#define DDC_QUERY_QUERY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/cell.h"

namespace ddc {

enum class Aggregate { kSum, kCount, kAvg };

struct Predicate {
  int dim = 0;
  Coord lo = 0;
  Coord hi = 0;
};

struct GroupBySpec {
  int dim = 0;
  int64_t group_size = 1;
};

struct Query {
  Aggregate aggregate = Aggregate::kSum;
  std::optional<GroupBySpec> group_by;
  std::vector<Predicate> predicates;
};

// Renders a query back to its canonical text (for diagnostics and tests).
std::string QueryToString(const Query& query);

const char* AggregateName(Aggregate aggregate);

}  // namespace ddc

#endif  // DDC_QUERY_QUERY_H_
