// A minimal range-aggregate query language over data cubes.
//
// Grammar (case-insensitive keywords, whitespace-separated):
//
//   statement := ("EXPLAIN" "ANALYZE"?)? (query | write)
//   query     := aggregate groupby? where?
//   aggregate := "SUM" | "COUNT" | "AVG"
//   groupby   := "GROUP" "BY" dim ("SIZE" int)?        -- default SIZE 1
//   where     := "WHERE" pred ("AND" pred)*
//   pred      := dim "IN" "[" int "," int "]"
//              | dim "=" int
//   dim       := "d" int                               -- d0, d1, ...
//   write     := ("ADD" | "SET") target ("," target)*
//   target    := "AT" "[" int ("," int)* "]" "=" int
//              | int "IN" "[" int ("," int)* ".." int ("," int)* "]"
//
// Examples:
//   SUM WHERE d0 IN [27, 45] AND d1 IN [220, 222]
//   AVG GROUP BY d1 SIZE 7 WHERE d0 = 3
//   COUNT
//   ADD AT [3, 4] = 10, AT [5, 6] = -2
//   SET AT [0, 0] = 100
//   ADD 5 IN [0, 0 .. 9, 9]
//   SET 0 IN [3, 3 .. 5, 5], AT [4, 4] = 7
//   EXPLAIN SUM GROUP BY d0 WHERE d1 IN [0, 7]
//   EXPLAIN ANALYZE SUM WHERE d0 IN [2, 9]
//
// EXPLAIN prints the planned decomposition of the inner statement without
// mutating anything; EXPLAIN ANALYZE additionally executes a *read*
// statement and reports its exact measured costs (writes are still only
// planned — an EXPLAIN never changes cube state). See DESIGN.md §14.
//
// Dimensions without a predicate span the cube's whole domain. Repeated
// predicates on one dimension intersect. The language is deliberately tiny:
// every query maps to range aggregates (one per group), which is exactly
// what the underlying structures serve in polylog time. A write statement
// maps to exactly one MutationBatch: point targets carry the verb's point
// kind (ADD → kAdd, SET → kSet), range targets its range kind (kRangeAdd /
// kRangeSet), and the whole list lands through a single ApplyBatch call
// (one shared descent for the point runs; one WAL record when the target
// is durable). A range target's corners must agree in arity; inverted
// bounds (lo > hi anywhere) denote the empty box and write nothing.

#ifndef DDC_QUERY_QUERY_H_
#define DDC_QUERY_QUERY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/cell.h"
#include "common/mutation.h"

namespace ddc {

enum class Aggregate { kSum, kCount, kAvg };

struct Predicate {
  int dim = 0;
  Coord lo = 0;
  Coord hi = 0;
};

struct GroupBySpec {
  int dim = 0;
  int64_t group_size = 1;
};

struct Query {
  Aggregate aggregate = Aggregate::kSum;
  std::optional<GroupBySpec> group_by;
  std::vector<Predicate> predicates;
};

// A batched write statement: every target carries the statement's verb
// (points as kAdd/kSet, ranges as kRangeAdd/kRangeSet) and the whole list
// is applied through one ApplyBatch call, in order.
struct WriteStatement {
  MutationBatch mutations;
};

// Introspection prefix of a statement: plain execution, EXPLAIN (plan
// only), or EXPLAIN ANALYZE (plan + measured execution; reads only).
enum class ExplainMode { kNone, kPlan, kAnalyze };

// A parsed statement: exactly one of `query` (a read) or `write` is set.
struct Statement {
  std::optional<Query> query;
  std::optional<WriteStatement> write;
  ExplainMode explain = ExplainMode::kNone;
};

// Renders a query back to its canonical text (for diagnostics and tests).
std::string QueryToString(const Query& query);

// Renders a write statement back to its canonical text. Parseable write
// statements (one verb for every point) round-trip exactly; a hand-built
// mixed-kind batch renders the first mutation's verb.
std::string WriteToString(const WriteStatement& write);

// Canonical text for either kind of statement (empty for an empty one).
std::string StatementToString(const Statement& statement);

const char* AggregateName(Aggregate aggregate);

}  // namespace ddc

#endif  // DDC_QUERY_QUERY_H_
