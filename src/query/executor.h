// Executor for parsed queries (query.h) against cube structures.
//
// A query compiles to one box per result row: the WHERE predicates pin the
// box (unconstrained dimensions span the full domain); GROUP BY splits it
// along one dimension into aligned groups. Each row is served by range
// aggregates on the underlying structure — polylog per row on a Dynamic
// Data Cube.

#ifndef DDC_QUERY_EXECUTOR_H_
#define DDC_QUERY_EXECUTOR_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cache/cached_cube.h"
#include "common/cube_interface.h"
#include "common/range.h"
#include "ddc/dynamic_data_cube.h"
#include "olap/measure.h"
#include "query/query.h"

namespace ddc {

struct QueryResultRow {
  // Group interval along the grouped dimension (whole box when the query
  // has no GROUP BY; then group_start/end are the box bounds of dim 0).
  Coord group_start = 0;
  Coord group_end = 0;
  // Populated per the aggregate: sum and count always, value is the
  // aggregate's headline number (AVG may be empty on zero-count groups).
  int64_t sum = 0;
  int64_t count = 0;
  std::optional<double> value;
};

struct QueryResult {
  bool ok = false;
  std::string error;  // Set when !ok.
  Aggregate aggregate = Aggregate::kSum;
  std::vector<QueryResultRow> rows;
  // Write statements only: true, with the number of mutations applied
  // (rows stays empty).
  bool is_write = false;
  int64_t mutations_applied = 0;
  // EXPLAIN [ANALYZE] statements only: the rendered plan (rows stays
  // empty; an EXPLAIN never mutates the cube).
  bool is_explain = false;
  std::string explain_text;
};

// Executes against a MeasureCube (supports SUM, COUNT and AVG).
QueryResult ExecuteQuery(const Query& query, const MeasureCube& cube);

// Executes against a bare DynamicDataCube (SUM only; COUNT/AVG produce an
// error result because the cube carries no observation counts).
QueryResult ExecuteQuery(const Query& query, const DynamicDataCube& cube);

// Executes against a query-result-cached cube (SUM only, like the bare
// cube): the per-row boxes route through CachedCube::RangeSumBatch, so
// repeated reports serve from cache and misses still share one batched
// descent on the backing cube.
QueryResult ExecuteQuery(const Query& query, const CachedCube& cube);

// Applies a write statement through the cube's batched write path: the
// whole statement is ONE ApplyBatch call (one shared descent on a DDC).
// Cells whose dimensionality doesn't match the cube produce an error
// result without touching the cube.
QueryResult ExecuteWrite(const WriteStatement& write, CubeInterface* cube);

// Convenience: parse + execute.
QueryResult RunQuery(const std::string& text, const MeasureCube& cube);
QueryResult RunQuery(const std::string& text, const DynamicDataCube& cube);

// Parses and runs a full statement — a read query or an ADD/SET write —
// against one cube. Writes land through ExecuteWrite (batched); reads
// behave exactly like RunQuery. EXPLAIN-prefixed statements route through
// ExplainStatement and never mutate the cube. With observability enabled,
// every executed statement also installs a per-operation cost ledger and
// appends one record to the flight recorder (obs/flight_recorder.h).
QueryResult RunStatement(const std::string& text, DynamicDataCube* cube);

// Cache-enabled statement execution: reads probe (and on a miss populate)
// the cache, writes run the precise-invalidation pipeline before landing in
// the backing cube, and EXPLAIN [ANALYZE] never mutates or populates the
// cache (probes under ANALYZE are counted but their misses are discarded).
QueryResult RunStatement(const std::string& text, CachedCube* cube);

// Computes the box a read query targets over the cube's current domain
// (predicates intersected; no GROUP BY split). Exposed for tools that want
// the planned geometry without executing. Returns false with *error on a
// bad dimension reference.
bool QueryBox(const Query& query, const DynamicDataCube& cube, Box* box,
              std::string* error);

// Renders the EXPLAIN [ANALYZE] plan for a parsed statement. Reads print
// the corner decomposition (from DynamicDataCube::PlanRangeSumBatch) and —
// under ANALYZE — execute and report exact ledger costs. Writes print the
// coalesce-program shape only: an EXPLAIN never mutates the cube, even
// with ANALYZE. `parse_ns` (optional) is echoed into the timing section.
QueryResult ExplainStatement(const Statement& statement,
                             const DynamicDataCube& cube,
                             int64_t parse_ns = 0);

// EXPLAIN [ANALYZE] over a cached cube. Read plans come from the backing
// DynamicDataCube's corner planner when the cache wraps one (plus a cache
// section: resident/pinned entries); ANALYZE executes under
// CachedCube::ScopedNoPopulate and reports cache probes/hits through the
// ledger — an explained statement never inserts into the cache.
QueryResult ExplainStatement(const Statement& statement,
                             const CachedCube& cube, int64_t parse_ns = 0);

// Renders a result as a fixed-width table (one line per row).
std::string FormatResult(const QueryResult& result);

}  // namespace ddc

#endif  // DDC_QUERY_EXECUTOR_H_
