#include "wal/cube_log.h"

#include <cstring>
#include <filesystem>
#include <string>
#include <system_error>
#include <utility>
#include <vector>

#include "common/check.h"
#include "ddc/snapshot.h"
#include "fault/failpoint.h"
#include "obs/trace.h"

namespace ddc {

namespace {

// Registry handles, resolved once per process (see src/obs/metrics.h).
struct WalObs {
  obs::Counter& appends;
  obs::Counter& syncs;
  obs::Counter& checkpoints;
  obs::Counter& replay_records;
  obs::Counter& group_commit_batches;
  obs::Counter& group_commit_ops;
  obs::Histogram& append_ns;
  obs::Histogram& sync_ns;
  obs::Histogram& replay_ns;

  static WalObs& Get() {
    static WalObs* wal = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
      return new WalObs{*reg.GetCounter("wal.appends"),
                        *reg.GetCounter("wal.syncs"),
                        *reg.GetCounter("wal.checkpoints"),
                        *reg.GetCounter("wal.replay.records"),
                        *reg.GetCounter("wal.group_commit.batches"),
                        *reg.GetCounter("wal.group_commit.ops"),
                        *reg.GetHistogram("wal.append.ns"),
                        *reg.GetHistogram("wal.sync.ns"),
                        *reg.GetHistogram("wal.replay.ns")};
    }();
    return *wal;
  }
};

constexpr char kMagic[8] = {'D', 'D', 'C', 'W', 'L', 'O', 'G', '2'};
constexpr int32_t kMaxBatchOps = CubeLog::kMaxBatchOps;

// Record checksum: a simple multiply-xor mix over every field of the batch
// record. Not cryptographic — it detects torn writes and bit flips, which
// is all a local WAL needs.
uint64_t Mix(std::span<const Mutation> batch) {
  uint64_t h = 0x9e3779b97f4a7c15ull;
  auto fold = [&h](int64_t v) {
    h ^= static_cast<uint64_t>(v) + 0x9e3779b97f4a7c15ull + (h << 6) +
         (h >> 2);
    h *= 0xff51afd7ed558ccdull;
  };
  fold(static_cast<int64_t>(batch.size()));
  for (const Mutation& m : batch) {
    fold(static_cast<int64_t>(m.kind));
    for (Coord c : m.cell) fold(c);
    // The high corner is folded only for range kinds, mirroring the record
    // layout — point records hash (and serialize) exactly as they did
    // before range kinds existed, so pre-range logs still validate.
    if (m.is_range()) {
      for (Coord c : m.hi) fold(c);
    }
    fold(m.delta);
  }
  return h;
}

template <typename T>
void WritePod(std::ostream* out, T value) {
  out->write(reinterpret_cast<const char*>(&value), sizeof(value));
}

template <typename T>
void AppendPod(std::string* buf, T value) {
  buf->append(reinterpret_cast<const char*>(&value), sizeof(value));
}

template <typename T>
bool ReadPod(std::istream* in, T* value) {
  in->read(reinterpret_cast<char*>(value), sizeof(*value));
  return in->gcount() == static_cast<std::streamsize>(sizeof(*value));
}

bool WriteHeader(const std::string& path, int dims) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) return false;
  out.write(kMagic, sizeof(kMagic));
  WritePod<int32_t>(&out, dims);
  return out.good();
}

// Returns the header's dims, or -1 when missing/invalid.
int ReadHeader(std::istream* in) {
  char magic[8];
  in->read(magic, sizeof(magic));
  if (in->gcount() != sizeof(magic) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return -1;
  }
  int32_t dims = 0;
  if (!ReadPod(in, &dims) || dims < 1 || dims > 20) return -1;
  return dims;
}

}  // namespace

CubeLog::CubeLog(std::ofstream out, std::string path, int dims)
    : out_(std::move(out)), path_(std::move(path)), dims_(dims) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path_, ec);
  written_bytes_ = ec ? 0 : static_cast<int64_t>(size);
  synced_bytes_ = written_bytes_;
}

CubeLog::~CubeLog() {
  if (!poisoned_) return;
  // An injected write/sync failure is a crash point: the bytes the caller
  // was never acked for must not outlive this handle, including anything a
  // closing flush would push out. Close first (the stream may flush), then
  // cut the file back to the last durable byte.
  out_.close();
  std::error_code ec;
  std::filesystem::resize_file(path_, static_cast<uintmax_t>(synced_bytes_),
                               ec);
}

std::unique_ptr<CubeLog> CubeLog::Open(const std::string& path, int dims) {
  DDC_CHECK(dims >= 1 && dims <= 20);
  {
    std::ifstream probe(path, std::ios::binary);
    if (probe.is_open()) {
      const int existing = ReadHeader(&probe);
      if (existing != dims) return nullptr;  // Mismatch or corrupt header.
    } else if (!WriteHeader(path, dims)) {
      return nullptr;
    }
  }
  std::ofstream out(path, std::ios::binary | std::ios::app);
  if (!out.is_open()) return nullptr;
  return std::unique_ptr<CubeLog>(new CubeLog(std::move(out), path, dims));
}

bool CubeLog::Append(const Cell& cell, int64_t delta) {
  const Mutation m{cell, delta, MutationKind::kAdd};
  return AppendBatch(std::span<const Mutation>(&m, 1));
}

bool CubeLog::AppendBatch(std::span<const Mutation> batch) {
  if (batch.empty()) return true;
  if (poisoned_) return false;
  if (!BatchWellFormed(batch, dims_) ||
      batch.size() > static_cast<size_t>(kMaxBatchOps)) {
    return false;  // Recoverable caller error; nothing written.
  }
  obs::ScopedLatencyTimer timer(&WalObs::Get().append_ns);
  if (obs::Enabled()) {
    WalObs::Get().appends.Increment();
    WalObs::Get().group_commit_batches.Increment();
    WalObs::Get().group_commit_ops.Add(static_cast<int64_t>(batch.size()));
  }
  // Serialize the whole record up front: the stream sees one contiguous
  // write, and the short-write failpoint below can tear it at an arbitrary
  // byte the way a crash mid-write() would.
  std::string buf;
  buf.reserve(sizeof(int32_t) +
              batch.size() * (sizeof(int32_t) +
                              (2 * static_cast<size_t>(dims_) + 1) *
                                  sizeof(int64_t)) +
              sizeof(uint64_t));
  AppendPod<int32_t>(&buf, static_cast<int32_t>(batch.size()));
  for (const Mutation& m : batch) {
    AppendPod<int32_t>(&buf, static_cast<int32_t>(m.kind));
    for (Coord c : m.cell) AppendPod<int64_t>(&buf, c);
    // Range records carry 2d coordinates: low corner, then high corner.
    // Point records keep the pre-range byte layout.
    if (m.is_range()) {
      for (Coord c : m.hi) AppendPod<int64_t>(&buf, c);
    }
    AppendPod<int64_t>(&buf, m.delta);
  }
  AppendPod<uint64_t>(&buf, Mix(batch));
  if (DDC_FAULTPOINT("wal.write.short")) {
    // Write + flush a strict prefix of the record, then poison: the torn
    // bytes are on disk (replay must discard them) and nothing may ever be
    // appended behind them.
    const auto cut = static_cast<std::streamsize>(
        fault::RandBelow(static_cast<uint64_t>(buf.size())));
    out_.write(buf.data(), cut);
    out_.flush();
    written_bytes_ += static_cast<int64_t>(cut);
    if (out_.good()) synced_bytes_ = written_bytes_;
    poisoned_ = true;
    return false;
  }
  out_.write(buf.data(), static_cast<std::streamsize>(buf.size()));
  if (!out_.good()) return false;
  written_bytes_ += static_cast<int64_t>(buf.size());
  appended_ += static_cast<int64_t>(batch.size());
  return true;
}

bool CubeLog::Sync() {
  obs::ScopedLatencyTimer timer(&WalObs::Get().sync_ns);
  if (obs::Enabled()) WalObs::Get().syncs.Increment();
  if (poisoned_) return false;
  if (DDC_FAULTPOINT("wal.sync.fail")) {
    // The flush never happens: buffered records are lost when the handle
    // dies (the destructor truncates back to synced_bytes_).
    poisoned_ = true;
    return false;
  }
  out_.flush();
  if (!out_.good()) return false;
  synced_bytes_ = written_bytes_;
  return true;
}

ReplayResult CubeLog::Replay(const std::string& path, DynamicDataCube* cube) {
  ReplayResult result;
  obs::TraceSpan span("wal.replay", 0, 0, &WalObs::Get().replay_ns);
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return result;
  const int dims = ReadHeader(&in);
  if (dims < 0 || dims != cube->dims()) return result;
  result.header_ok = true;

  MutationBatch batch;
  while (true) {
    // The count field decides between clean EOF (nothing of a record read)
    // and a torn record (any bytes of a record present).
    int32_t count = 0;
    if (!ReadPod(&in, &count)) {
      result.clean_tail = (in.gcount() == 0);
      break;
    }
    if (count < 1 || count > kMaxBatchOps) {
      result.clean_tail = false;  // Garbage count: treat as torn.
      break;
    }
    batch.clear();
    batch.reserve(static_cast<size_t>(count));
    bool complete = true;
    for (int32_t r = 0; r < count && complete; ++r) {
      int32_t kind = 0;
      Mutation m;
      m.cell.resize(static_cast<size_t>(dims));
      // Kind gates how many coordinates follow, so it must be validated
      // before the reads it steers (0..3: add, set, range-add, range-set).
      complete = ReadPod(&in, &kind) && kind >= 0 && kind <= 3;
      for (int i = 0; i < dims && complete; ++i) {
        complete = ReadPod(&in, &m.cell[static_cast<size_t>(i)]);
      }
      if (complete && IsRangeKind(static_cast<MutationKind>(kind))) {
        m.hi.resize(static_cast<size_t>(dims));
        for (int i = 0; i < dims && complete; ++i) {
          complete = ReadPod(&in, &m.hi[static_cast<size_t>(i)]);
        }
      }
      complete = complete && ReadPod(&in, &m.delta);
      if (!complete) break;
      m.kind = static_cast<MutationKind>(kind);
      batch.push_back(std::move(m));
    }
    uint64_t checksum = 0;
    complete = complete && ReadPod(&in, &checksum);
    if (!complete || checksum != Mix(batch)) {
      result.clean_tail = false;  // Mid-record EOF or bit flip: torn tail.
      break;
    }
    // The whole record lands through the batched write path — replay
    // reconstructs the original group commit, all-or-nothing.
    cube->ApplyBatch(batch);
    result.applied += count;
    ++result.batches;
  }
  if (obs::Enabled()) {
    WalObs::Get().replay_records.Add(result.applied);
    span.set_arg0(result.applied);
    span.set_arg1(result.clean_tail ? 1 : 0);
  }
  return result;
}

bool CubeLog::Reset(const std::string& path, int dims) {
  return WriteHeader(path, dims);
}

DurableCube::DurableCube(int dims, int64_t initial_side,
                         const std::string& base_path, DdcOptions options)
    : snapshot_path_(base_path + ".snap"), log_path_(base_path + ".log") {
  // Recover: snapshot first (if present), then replay the log on top.
  cube_ = LoadSnapshotFromFile(snapshot_path_);
  if (cube_ == nullptr) {
    cube_ = std::make_unique<DynamicDataCube>(dims, initial_side, options);
  }
  DDC_CHECK(cube_->dims() == dims);
  {
    std::ifstream probe(log_path_, std::ios::binary);
    if (probe.is_open()) {
      probe.close();
      recovery_ = CubeLog::Replay(log_path_, cube_.get());
      if (!recovery_.clean_tail) {
        // Discard the torn tail by checkpointing the recovered state.
        if (SaveSnapshotToFile(*cube_, snapshot_path_)) {
          CubeLog::Reset(log_path_, dims);
        }
      }
    }
  }
  log_ = CubeLog::Open(log_path_, dims);
  // Count re-roots through the cube's lifecycle hub — subscribed after
  // recovery so replay-induced growth doesn't immediately demand a
  // checkpoint of a cube that was just snapshot-consistent.
  cube_->lifecycle().Subscribe(
      [this](const ReRootEvent&) { ++reroots_since_checkpoint_; });
}

bool DurableCube::Add(const Cell& cell, int64_t delta, bool sync) {
  bool logged = false;
  if (log_ != nullptr) {
    logged = log_->Append(cell, delta);
    if (sync) logged = log_->Sync() && logged;
  }
  cube_->Add(cell, delta);
  return logged;
}

bool DurableCube::ApplyBatch(std::span<const Mutation> batch, bool sync) {
  if (!BatchWellFormed(batch, cube_->dims()) ||
      batch.size() > static_cast<size_t>(CubeLog::kMaxBatchOps)) {
    return false;  // Malformed: recoverable error, nothing logged or applied.
  }
  if (batch.empty()) return true;
  // Log-before-apply, like Add — but the whole batch rides one record and
  // (with sync) one flush: the group commit.
  bool logged = false;
  if (log_ != nullptr) {
    logged = log_->AppendBatch(batch);
    if (sync) logged = log_->Sync() && logged;
  }
  cube_->ApplyBatch(batch);
  if (logged) {
    // Crash latch for recovery harnesses: the batch is durable here but the
    // caller has not observed the ack yet — the one window where recovery
    // may legitimately come back with one more batch than was acked.
    (void)DDC_FAULTPOINT("wal.commit.acked");
  }
  return logged;
}

bool DurableCube::Checkpoint() {
  obs::TraceSpan span("wal.checkpoint");
  if (obs::Enabled()) WalObs::Get().checkpoints.Increment();
  if (log_ != nullptr && !log_->Sync()) return false;
  if (!SaveSnapshotToFile(*cube_, snapshot_path_)) return false;
  // Reset the log; reopen the append handle.
  log_.reset();
  if (!CubeLog::Reset(log_path_, cube_->dims())) return false;
  log_ = CubeLog::Open(log_path_, cube_->dims());
  reroots_since_checkpoint_ = 0;
  return log_ != nullptr;
}

bool DurableCube::CheckpointIfRerooted() {
  if (reroots_since_checkpoint_ == 0) return true;
  return Checkpoint();
}

}  // namespace ddc
