// Write-ahead logging for dynamic cubes.
//
// The paper's whole point is cheap point updates; making them *durable*
// requires an append-only log paired with periodic snapshots
// (ddc/snapshot.h). CubeLog is that log. The unit of logging is the same as
// the unit of the write path everywhere else: a MutationBatch. One record
// holds a whole batch behind a single checksum, so a group commit costs one
// append and one sync no matter how many mutations it carries, and replay
// applies each record through ApplyBatch — a batch is durable
// all-or-nothing (a torn or corrupt record ends replay; everything before
// it applies).
//
// File layout (little-endian):
//   magic "DDCWLOG2" (8 bytes), int32 dims
//   records: { int32 count;
//              count x { int32 kind; int64 cell[dims];
//                        int64 hi[dims] (range kinds only); int64 value };
//              uint64 checksum }
// where checksum = Mix(count, mutations...) (see implementation) and kind
// is MutationKind (0 = add, 1 = set, 2 = range-add, 3 = range-set). Range
// mutations carry 2d coordinates — the box's low corner in `cell` and its
// high corner in `hi` — so a region-wide write costs one fixed-size record
// no matter how many cells the box covers. Point records keep the exact
// pre-range byte layout (the checksum folds `hi` only for range kinds), so
// logs written before range kinds existed replay unchanged. A point Append
// is a count-1 record. "DDCWLOG1" logs (the pre-batch format, one record
// per point delta) are not readable; recovery treats them as a bad header.

#ifndef DDC_WAL_CUBE_LOG_H_
#define DDC_WAL_CUBE_LOG_H_

#include <cstdint>
#include <fstream>
#include <memory>
#include <span>
#include <string>

#include "common/cell.h"
#include "common/mutation.h"
#include "ddc/dynamic_data_cube.h"

namespace ddc {

struct ReplayResult {
  bool header_ok = false;
  // Mutations applied successfully (summed over whole batch records; a
  // batch never applies partially).
  int64_t applied = 0;
  // Batch records applied successfully.
  int64_t batches = 0;
  // False when replay stopped at a corrupt/torn record (the tail was
  // discarded — the expected state after a crash mid-append).
  bool clean_tail = true;
};

class CubeLog {
 public:
  // Upper bound on the per-record mutation count accepted at append and
  // replay. A torn or corrupt count field would otherwise send the reader
  // chasing gigabytes of garbage before noticing; any value past this is
  // treated as a torn tail (and oversized batches are rejected at append).
  static constexpr int32_t kMaxBatchOps = 1 << 20;

  // Opens `path` for appending, creating it (with a header) if absent. An
  // existing file must carry a matching header. Returns nullptr on error.
  static std::unique_ptr<CubeLog> Open(const std::string& path, int dims);

  CubeLog(const CubeLog&) = delete;
  CubeLog& operator=(const CubeLog&) = delete;

  // If an injected failure poisoned the handle, destruction truncates the
  // file back to the last durably synced byte: everything the caller was
  // never acked for is gone, exactly as if the process had died at the
  // failure point. (A clean handle closes normally.)
  ~CubeLog();

  int dims() const { return dims_; }

  // Appends one point update as a count-1 batch record (buffered). Returns
  // false on write failure.
  bool Append(const Cell& cell, int64_t delta);

  // Appends the whole batch as ONE record behind one checksum (buffered);
  // with the Sync that follows a group commit, the batch costs one append
  // + one sync regardless of size. Returns false — writing nothing — on a
  // malformed batch (cell arity != dims(), or more than kMaxBatchOps
  // mutations), and false on write failure. An empty batch writes nothing
  // and succeeds.
  //
  // Failpoint `wal.write.short` (DDC_FAULTS builds): tears the record at a
  // fault-chosen byte, flushes the torn prefix, and poisons the handle.
  bool AppendBatch(std::span<const Mutation> batch);

  // Flushes buffered records to the file.
  //
  // Failpoint `wal.sync.fail`: reports failure without flushing and
  // poisons the handle (the buffered bytes will never reach the file).
  bool Sync();

  // True once an injected write/sync failure occurred. A poisoned log
  // accepts no further appends or syncs: anything written after a failed
  // write would sit behind garbage and silently vanish at replay, so the
  // only sound continuation is crash + recovery (see DESIGN.md §11).
  bool poisoned() const { return poisoned_; }

  // Mutations appended through this handle (batches count each mutation).
  int64_t appended() const { return appended_; }

  // Replays `path` into `cube` (whose dimensionality must match the log's).
  static ReplayResult Replay(const std::string& path, DynamicDataCube* cube);

  // Resets `path` to an empty log (after a checkpoint). Returns false on
  // I/O failure.
  static bool Reset(const std::string& path, int dims);

 private:
  CubeLog(std::ofstream out, std::string path, int dims);

  std::ofstream out_;
  std::string path_;
  int dims_;
  int64_t appended_ = 0;
  // Crash-simulation bookkeeping (meaningful only under injected faults):
  // bytes logically written through this handle vs bytes known flushed.
  int64_t written_bytes_ = 0;
  int64_t synced_bytes_ = 0;
  bool poisoned_ = false;
};

// DurableCube: a DynamicDataCube whose updates are logged before they are
// applied, with snapshot checkpointing and crash recovery.
//
//   DurableCube cube(2, 16, "/data/sales");     // opens *.snap + *.log
//   cube.Add({37, 220}, 150);                   // logged, then applied
//   cube.Checkpoint();                          // snapshot + log reset
//
// Recovery happens in the constructor: the snapshot (if any) is loaded and
// the log replayed on top, discarding a torn tail.
class DurableCube {
 public:
  // `base_path` names the snapshot (`<base>.snap`) and log (`<base>.log`).
  // `dims`/`initial_side`/`options` apply when starting fresh.
  DurableCube(int dims, int64_t initial_side, const std::string& base_path,
              DdcOptions options = {});

  DurableCube(const DurableCube&) = delete;
  DurableCube& operator=(const DurableCube&) = delete;

  // False when the constructor could not open/create its files; the cube
  // still works in memory but nothing is durable.
  bool durable() const { return log_ != nullptr; }

  DynamicDataCube& cube() { return *cube_; }
  const DynamicDataCube& cube() const { return *cube_; }

  // Logs, then applies. `sync` forces a flush (call it per transaction
  // boundary; leaving it false batches flushes until Checkpoint).
  bool Add(const Cell& cell, int64_t delta, bool sync = false);

  // Group commit: logs the whole batch as one record, optionally syncs
  // (one append + one sync for the entire batch), then applies it through
  // the cube's batched write path. Durability is all-or-nothing for the
  // batch — after a crash, replay either re-applies every mutation of the
  // record or none. A malformed batch (cell arity != dims, or oversized)
  // is rejected up front: returns false, nothing logged or applied. For a
  // well-formed batch, returns false when logging (or the sync) failed;
  // the in-memory apply happens regardless, mirroring Add.
  //
  // A true return is the durability *ack*: the committed-prefix recovery
  // contract (DESIGN.md §11) promises every acked batch survives a crash.
  // The `wal.commit.acked` failpoint sits between the sync and the return
  // so crash harnesses can kill the process in the acked-but-unobserved
  // window.
  bool ApplyBatch(std::span<const Mutation> batch, bool sync = true);

  // Writes a snapshot and resets the log. Returns false on I/O failure.
  bool Checkpoint();

  // Re-roots (growth or shrink) of the wrapped cube since the last
  // checkpoint (or construction), observed through the cube's
  // CubeLifecycle hub. A re-root is a natural checkpoint trigger: the
  // in-memory tree was just rebuilt wholesale, so snapshotting now bounds
  // replay work after a crash.
  int64_t reroots_since_checkpoint() const {
    return reroots_since_checkpoint_;
  }

  // Checkpoints iff at least one re-root happened since the last
  // checkpoint. Deliberately NOT run inside the lifecycle callback: a
  // checkpoint from within the re-root of a half-applied update would
  // snapshot pre-update state while resetting a log that already holds the
  // update's record — losing it. Call at a quiescent point (e.g. after
  // ApplyBatch returns). Returns false on I/O failure.
  bool CheckpointIfRerooted();

  // Records replayed from the log at construction (post-snapshot updates
  // that survived the last run).
  const ReplayResult& recovery() const { return recovery_; }

  const std::string& snapshot_path() const { return snapshot_path_; }
  const std::string& log_path() const { return log_path_; }

 private:
  std::string snapshot_path_;
  std::string log_path_;
  std::unique_ptr<DynamicDataCube> cube_;
  std::unique_ptr<CubeLog> log_;
  ReplayResult recovery_;
  int64_t reroots_since_checkpoint_ = 0;
};

}  // namespace ddc

#endif  // DDC_WAL_CUBE_LOG_H_
