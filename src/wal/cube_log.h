// Write-ahead logging for dynamic cubes.
//
// The paper's whole point is cheap point updates; making them *durable*
// requires an append-only log (an update is one tiny record) paired with
// periodic snapshots (ddc/snapshot.h). CubeLog is that log: fixed-width
// little-endian records, each carrying a checksum so replay stops cleanly
// at a torn tail after a crash.
//
// File layout:
//   magic "DDCWLOG1" (8 bytes), int32 dims
//   records: { int64 cell[dims]; int64 delta; uint64 checksum }
// where checksum = Mix(cell..., delta) (see implementation). A record with
// a bad checksum (torn write) ends replay; everything before it applies.

#ifndef DDC_WAL_CUBE_LOG_H_
#define DDC_WAL_CUBE_LOG_H_

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>

#include "common/cell.h"
#include "ddc/dynamic_data_cube.h"

namespace ddc {

struct ReplayResult {
  bool header_ok = false;
  // Records applied successfully.
  int64_t applied = 0;
  // False when replay stopped at a corrupt/torn record (the tail was
  // discarded — the expected state after a crash mid-append).
  bool clean_tail = true;
};

class CubeLog {
 public:
  // Opens `path` for appending, creating it (with a header) if absent. An
  // existing file must carry a matching header. Returns nullptr on error.
  static std::unique_ptr<CubeLog> Open(const std::string& path, int dims);

  CubeLog(const CubeLog&) = delete;
  CubeLog& operator=(const CubeLog&) = delete;

  int dims() const { return dims_; }

  // Appends one update record (buffered). Returns false on write failure.
  bool Append(const Cell& cell, int64_t delta);

  // Flushes buffered records to the file.
  bool Sync();

  // Records appended through this handle.
  int64_t appended() const { return appended_; }

  // Replays `path` into `cube` (whose dimensionality must match the log's).
  static ReplayResult Replay(const std::string& path, DynamicDataCube* cube);

  // Resets `path` to an empty log (after a checkpoint). Returns false on
  // I/O failure.
  static bool Reset(const std::string& path, int dims);

 private:
  CubeLog(std::ofstream out, int dims);

  std::ofstream out_;
  int dims_;
  int64_t appended_ = 0;
};

// DurableCube: a DynamicDataCube whose updates are logged before they are
// applied, with snapshot checkpointing and crash recovery.
//
//   DurableCube cube(2, 16, "/data/sales");     // opens *.snap + *.log
//   cube.Add({37, 220}, 150);                   // logged, then applied
//   cube.Checkpoint();                          // snapshot + log reset
//
// Recovery happens in the constructor: the snapshot (if any) is loaded and
// the log replayed on top, discarding a torn tail.
class DurableCube {
 public:
  // `base_path` names the snapshot (`<base>.snap`) and log (`<base>.log`).
  // `dims`/`initial_side`/`options` apply when starting fresh.
  DurableCube(int dims, int64_t initial_side, const std::string& base_path,
              DdcOptions options = {});

  DurableCube(const DurableCube&) = delete;
  DurableCube& operator=(const DurableCube&) = delete;

  // False when the constructor could not open/create its files; the cube
  // still works in memory but nothing is durable.
  bool durable() const { return log_ != nullptr; }

  DynamicDataCube& cube() { return *cube_; }
  const DynamicDataCube& cube() const { return *cube_; }

  // Logs, then applies. `sync` forces a flush (call it per transaction
  // boundary; leaving it false batches flushes until Checkpoint).
  bool Add(const Cell& cell, int64_t delta, bool sync = false);

  // Writes a snapshot and resets the log. Returns false on I/O failure.
  bool Checkpoint();

  // Records replayed from the log at construction (post-snapshot updates
  // that survived the last run).
  const ReplayResult& recovery() const { return recovery_; }

  const std::string& snapshot_path() const { return snapshot_path_; }
  const std::string& log_path() const { return log_path_; }

 private:
  std::string snapshot_path_;
  std::string log_path_;
  std::unique_ptr<DynamicDataCube> cube_;
  std::unique_ptr<CubeLog> log_;
  ReplayResult recovery_;
};

}  // namespace ddc

#endif  // DDC_WAL_CUBE_LOG_H_
