// OverlayBoxArray: one overlay box with its values stored directly in dense
// arrays — the Section 3 (Basic Dynamic Data Cube) representation.
//
// An overlay box of side k in d dimensions stores exactly
// k^d - (k-1)^d values (Section 3.1): the box-local prefix sums
// SUM(A[anchor .. anchor+offset]) for every offset on a "far face", i.e.
// offsets with offset[j] == k-1 in at least one dimension j. The cell with
// every coordinate maxed is the subtotal S; the remaining far-face cells are
// the cumulative row sums (Figure 7).
//
// Layout: the far faces are partitioned by their *first* maxed dimension.
// Face j holds the offsets with offset[j] == k-1 and offset[i] < k-1 for all
// i < j; it is a dense array over the other d-1 coordinates with extents
// (k-1) for i < j and k for i > j. The face sizes sum exactly to
// k^d - (k-1)^d, which is what StorageCells() reports and what the Table 2
// experiment verifies against the closed form.
//
// All coordinates in this API are box-local offsets in [0, k).

#ifndef DDC_BASIC_DDC_OVERLAY_BOX_H_
#define DDC_BASIC_DDC_OVERLAY_BOX_H_

#include <cstdint>
#include <vector>

#include "common/cell.h"
#include "common/md_array.h"
#include "common/op_counter.h"

namespace ddc {

class OverlayBoxArray {
 public:
  OverlayBoxArray(int dims, int64_t side);

  OverlayBoxArray(const OverlayBoxArray&) = delete;
  OverlayBoxArray& operator=(const OverlayBoxArray&) = delete;

  int dims() const { return dims_; }
  int64_t side() const { return side_; }

  // The stored value at a far-face offset: SUM(A[anchor .. anchor+offset]).
  // `offset` must have offset[j] == side-1 for at least one j.
  int64_t ValueAt(const Cell& offset, OpCounters* counters) const;

  // The subtotal S: sum of every cell of A covered by this box.
  int64_t Subtotal(OpCounters* counters) const;

  // Records A[anchor + updated_offset] += delta by adjusting every stored
  // value whose region contains the updated cell — the cascading in-box
  // update whose cost drives the Section 3.2 analysis.
  void ApplyDelta(const Cell& updated_offset, int64_t delta,
                  OpCounters* counters);

  // Directly assigns the stored value at a far-face offset (bulk-build
  // path; no cascading).
  void SetValueAt(const Cell& offset, int64_t value);

  // Exactly side^d - (side-1)^d.
  int64_t StorageCells() const { return storage_cells_; }

 private:
  int dims_;
  int64_t side_;
  int64_t storage_cells_;
  // faces_[j] may be absent (empty MdArray) when its extent product is zero
  // (side == 1 keeps only face 0). For dims_ == 1 there are no transverse
  // coordinates; the single stored value lives in scalar_.
  std::vector<MdArray<int64_t>> faces_;
  std::vector<bool> face_present_;
  int64_t scalar_ = 0;  // dims_ == 1 only: the subtotal.
};

}  // namespace ddc

#endif  // DDC_BASIC_DDC_OVERLAY_BOX_H_
