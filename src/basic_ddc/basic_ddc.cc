#include "basic_ddc/basic_ddc.h"

#include <algorithm>

#include "common/bit_util.h"
#include "common/check.h"

namespace ddc {

BasicDdc::BasicDdc(int dims, int64_t side) : dims_(dims), side_(side) {
  DDC_CHECK(dims_ >= 1 && dims_ <= 20);
  DDC_CHECK(side_ >= 2 && IsPowerOfTwo(side_));
  num_levels_ = FloorLog2(side_);
  num_children_ = 1u << dims_;
}

BasicDdc::Node* BasicDdc::EnsureNode(std::unique_ptr<Node>* slot) {
  if (*slot == nullptr) {
    *slot = std::make_unique<Node>();
    (*slot)->boxes.resize(num_children_);
    (*slot)->children.resize(num_children_);
  }
  return slot->get();
}

OverlayBoxArray* BasicDdc::EnsureBox(Node* node, uint32_t child_mask,
                                     int64_t box_side) {
  std::unique_ptr<OverlayBoxArray>& slot = node->boxes[child_mask];
  if (slot == nullptr) {
    slot = std::make_unique<OverlayBoxArray>(dims_, box_side);
    storage_cells_ += slot->StorageCells();
  }
  return slot.get();
}

std::unique_ptr<BasicDdc> BasicDdc::FromArray(const MdArray<int64_t>& array) {
  const Shape& shape = array.shape();
  const int dims = shape.dims();
  const Coord side = shape.extent(0);
  for (int i = 1; i < dims; ++i) DDC_CHECK(shape.extent(i) == side);
  auto cube = std::make_unique<BasicDdc>(dims, side);

  // One prefix sweep, then every overlay value is an O(2^d) region sum.
  MdArray<int64_t> prefix(shape);
  for (int64_t i = 0; i < array.size(); ++i) {
    prefix.at_linear(i) = array.at_linear(i);
  }
  for (int dim = 0; dim < dims; ++dim) {
    Cell cell(static_cast<size_t>(dims), 0);
    do {
      if (cell[static_cast<size_t>(dim)] == 0) continue;
      Cell prev = cell;
      --prev[static_cast<size_t>(dim)];
      prefix.at(cell) += prefix.at(prev);
    } while (shape.NextCell(&cell));
  }

  cube->EnsureNode(&cube->root_);
  cube->BuildNodeFromPrefix(cube->root_.get(), side,
                            UniformCell(dims, 0), prefix);
  return cube;
}

void BasicDdc::BuildNodeFromPrefix(Node* node, int64_t node_side,
                                   const Cell& node_anchor,
                                   const MdArray<int64_t>& prefix) {
  const int64_t k = node_side / 2;
  const Cell anchor0 = UniformCell(dims_, 0);
  auto region_sum = [&](const Box& box) {
    return RangeSumFromPrefix(
        box, anchor0, [&](const Cell& c) { return prefix.at(c); });
  };
  const Shape box_shape = Shape::Cube(dims_, k);
  for (uint32_t mask = 0; mask < num_children_; ++mask) {
    Cell box_anchor = node_anchor;
    for (int i = 0; i < dims_; ++i) {
      if (mask & (1u << i)) box_anchor[static_cast<size_t>(i)] += k;
    }
    OverlayBoxArray* box = EnsureBox(node, mask, k);
    Cell offset(static_cast<size_t>(dims_), 0);
    do {
      bool far_face = false;
      for (Coord c : offset) far_face |= (c == k - 1);
      if (!far_face) continue;
      box->SetValueAt(offset,
                      region_sum(Box{box_anchor, CellAdd(box_anchor, offset)}));
    } while (box_shape.NextCell(&offset));
    if (k > 1) {
      Node* child = EnsureNode(&node->children[mask]);
      BuildNodeFromPrefix(child, k, box_anchor, prefix);
    }
  }
}

void BasicDdc::Set(const Cell& cell, int64_t value) {
  Add(cell, value - Get(cell));
}

void BasicDdc::Add(const Cell& cell, int64_t delta) {
  DDC_CHECK(Box{DomainLo(), DomainHi()}.Contains(cell));
  if (delta == 0) return;
  EnsureNode(&root_);
  AddRec(root_.get(), side_, UniformCell(dims_, 0), cell, delta);
}

void BasicDdc::AddRec(Node* node, int64_t node_side, const Cell& node_anchor,
                      const Cell& cell, int64_t delta) {
  ++counters_.nodes_visited;
  const int64_t k = node_side / 2;
  // Identify the (unique) overlay box covering the cell.
  uint32_t child_mask = 0;
  Cell offset(static_cast<size_t>(dims_));
  for (int i = 0; i < dims_; ++i) {
    size_t ui = static_cast<size_t>(i);
    Coord rel = cell[ui] - node_anchor[ui];
    if (rel >= k) {
      child_mask |= 1u << i;
      rel -= k;
    }
    offset[ui] = rel;
  }
  OverlayBoxArray* box = EnsureBox(node, child_mask, k);
  box->ApplyDelta(offset, delta, &counters_);

  if (k > 1) {
    Cell child_anchor = node_anchor;
    for (int i = 0; i < dims_; ++i) {
      if (child_mask & (1u << i)) child_anchor[static_cast<size_t>(i)] += k;
    }
    Node* child = EnsureNode(&node->children[child_mask]);
    AddRec(child, k, child_anchor, cell, delta);
  }
}

int64_t BasicDdc::PrefixSum(const Cell& cell) const {
  DDC_CHECK(Box{DomainLo(), DomainHi()}.Contains(cell));
  if (root_ == nullptr) return 0;
  return PrefixSumRec(root_.get(), side_, UniformCell(dims_, 0), cell);
}

int64_t BasicDdc::PrefixSumRec(const Node* node, int64_t node_side,
                               const Cell& node_anchor,
                               const Cell& target) const {
  ++counters_.nodes_visited;
  const int64_t k = node_side / 2;
  int64_t sum = 0;
  Cell offset(static_cast<size_t>(dims_));
  for (uint32_t mask = 0; mask < num_children_; ++mask) {
    const OverlayBoxArray* box = node->boxes[mask].get();
    if (box == nullptr) continue;  // Unmaterialized region: all zero.
    // Classify the target against this box (Figure 10).
    bool before = false;   // Target precedes the box in some dimension.
    bool covered = true;   // Box covers the target in every dimension.
    for (int i = 0; i < dims_ && !before; ++i) {
      size_t ui = static_cast<size_t>(i);
      const Coord box_lo =
          node_anchor[ui] + ((mask & (1u << i)) ? k : 0);
      const Coord rel = target[ui] - box_lo;
      if (rel < 0) {
        before = true;
      } else if (rel >= k) {
        covered = false;
        offset[ui] = k - 1;
      } else {
        offset[ui] = rel;
      }
    }
    if (before) continue;  // Contributes nothing.
    if (covered) {
      if (k == 1) {
        // Leaf level: the box holds the original cell of A (its subtotal).
        sum += box->Subtotal(&counters_);
      } else {
        const Node* child = node->children[mask].get();
        DDC_DCHECK(child != nullptr);
        Cell child_anchor = node_anchor;
        for (int i = 0; i < dims_; ++i) {
          if (mask & (1u << i)) child_anchor[static_cast<size_t>(i)] += k;
        }
        sum += PrefixSumRec(child, k, child_anchor, target);
      }
    } else {
      // Target intersects or passes the box: one row-sum (or subtotal)
      // value at the clamped offset.
      sum += box->ValueAt(offset, &counters_);
    }
  }
  return sum;
}

int64_t BasicDdc::Get(const Cell& cell) const {
  DDC_CHECK(Box{DomainLo(), DomainHi()}.Contains(cell));
  if (root_ == nullptr) return 0;
  return GetRec(root_.get(), side_, UniformCell(dims_, 0), cell);
}

int64_t BasicDdc::GetRec(const Node* node, int64_t node_side,
                         const Cell& node_anchor, const Cell& cell) const {
  const int64_t k = node_side / 2;
  uint32_t child_mask = 0;
  for (int i = 0; i < dims_; ++i) {
    if (cell[static_cast<size_t>(i)] - node_anchor[static_cast<size_t>(i)] >=
        k) {
      child_mask |= 1u << i;
    }
  }
  const OverlayBoxArray* box = node->boxes[child_mask].get();
  if (box == nullptr) return 0;
  if (k == 1) return box->Subtotal(&counters_);
  const Node* child = node->children[child_mask].get();
  DDC_DCHECK(child != nullptr);
  Cell child_anchor = node_anchor;
  for (int i = 0; i < dims_; ++i) {
    if (child_mask & (1u << i)) child_anchor[static_cast<size_t>(i)] += k;
  }
  return GetRec(child, k, child_anchor, cell);
}

}  // namespace ddc
