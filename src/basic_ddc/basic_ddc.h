// BasicDdc: the Basic Dynamic Data Cube of Section 3.
//
// A tree recursively halves array A in every dimension. Each node stores
// 2^d overlay boxes — one per child region — with the box values held
// directly in dense arrays (OverlayBoxArray). Queries implement the
// Figure 10 algorithm (exactly one child descended per level, at most one
// value contributed by each non-descended box); updates implement the
// Figure 12 bottom-up algorithm (one box adjusted per level).
//
// Costs (verified by the E4/E5 benches): queries touch O(2^d log n) values;
// updates cost the Section 3.2 series d*(n/2)^{d-1} + d*(n/4)^{d-1} + ... =
// O(n^{d-1}) in the worst case, which is the motivation for the full DDC of
// Section 4.
//
// Nodes and boxes are materialized lazily, so an all-zero (or sparse) cube
// occupies memory proportional to its populated regions only.

#ifndef DDC_BASIC_DDC_BASIC_DDC_H_
#define DDC_BASIC_DDC_BASIC_DDC_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "basic_ddc/overlay_box.h"
#include "common/cube_interface.h"
#include "common/md_array.h"
#include "common/shape.h"

namespace ddc {

class BasicDdc : public CubeInterface {
 public:
  // `side` must be a power of two >= 2; the domain is [0, side)^dims.
  BasicDdc(int dims, int64_t side);

  // Dense bulk build: materializes the full tree, computing every overlay
  // value directly from one prefix sweep over `array` (O(2^d) per stored
  // value) instead of paying the O(n^{d-1}) cascade per cell. `array` must
  // be a power-of-two cube.
  static std::unique_ptr<BasicDdc> FromArray(const MdArray<int64_t>& array);

  int dims() const override { return dims_; }
  Cell DomainLo() const override { return UniformCell(dims_, 0); }
  Cell DomainHi() const override { return UniformCell(dims_, side_ - 1); }

  void Set(const Cell& cell, int64_t value) override;
  void Add(const Cell& cell, int64_t delta) override;
  int64_t Get(const Cell& cell) const override;
  int64_t PrefixSum(const Cell& cell) const override;
  int64_t StorageCells() const override { return storage_cells_; }
  std::string name() const override { return "basic_ddc"; }

  int64_t side() const { return side_; }
  // Number of tree levels (root has level log2(side) - 1, leaf-level nodes
  // have overlay boxes of side 1, matching Figure 9's numbering).
  int num_levels() const { return num_levels_; }

 private:
  struct Node {
    // Indexed by child mask: bit i set means the child occupies the upper
    // half of dimension i. Both vectors are sized 2^d on first use.
    std::vector<std::unique_ptr<OverlayBoxArray>> boxes;
    std::vector<std::unique_ptr<Node>> children;
  };

  Node* EnsureNode(std::unique_ptr<Node>* slot);
  OverlayBoxArray* EnsureBox(Node* node, uint32_t child_mask, int64_t box_side);

  void AddRec(Node* node, int64_t node_side, const Cell& node_anchor,
              const Cell& cell, int64_t delta);
  void BuildNodeFromPrefix(Node* node, int64_t node_side,
                           const Cell& node_anchor,
                           const MdArray<int64_t>& prefix);
  int64_t PrefixSumRec(const Node* node, int64_t node_side,
                       const Cell& node_anchor, const Cell& target) const;
  int64_t GetRec(const Node* node, int64_t node_side, const Cell& node_anchor,
                 const Cell& cell) const;

  int dims_;
  int64_t side_;
  int num_levels_;
  uint32_t num_children_;  // 2^d
  int64_t storage_cells_ = 0;
  std::unique_ptr<Node> root_;
};

}  // namespace ddc

#endif  // DDC_BASIC_DDC_BASIC_DDC_H_
