#include "basic_ddc/overlay_box.h"

#include <algorithm>

#include "common/bit_util.h"
#include "common/check.h"
#include "common/shape.h"

namespace ddc {

namespace {

// Extents of face j over the d-1 transverse dimensions: (side-1) below j,
// side above j. Returns an empty vector when any extent would be zero.
std::vector<Coord> FaceExtents(int dims, int64_t side, int face) {
  std::vector<Coord> extents;
  extents.reserve(static_cast<size_t>(dims - 1));
  for (int i = 0; i < dims; ++i) {
    if (i == face) continue;
    const Coord extent = (i < face) ? side - 1 : side;
    if (extent == 0) return {};
    extents.push_back(extent);
  }
  return extents;
}

// Projects a d-dimensional box-local offset to face j's d-1 coordinates.
Cell ProjectToFace(const Cell& offset, int face) {
  Cell out;
  out.reserve(offset.size() - 1);
  for (size_t i = 0; i < offset.size(); ++i) {
    if (static_cast<int>(i) == face) continue;
    out.push_back(offset[i]);
  }
  return out;
}

}  // namespace

OverlayBoxArray::OverlayBoxArray(int dims, int64_t side)
    : dims_(dims), side_(side) {
  DDC_CHECK(dims_ >= 1);
  DDC_CHECK(side_ >= 1);
  storage_cells_ = IPow(side_, dims_) - IPow(side_ - 1, dims_);
  if (dims_ == 1) {
    // The only far-face cell is the subtotal.
    DDC_CHECK(storage_cells_ == 1);
    return;
  }
  faces_.reserve(static_cast<size_t>(dims_));
  face_present_.resize(static_cast<size_t>(dims_), false);
  int64_t laid_out = 0;
  for (int j = 0; j < dims_; ++j) {
    std::vector<Coord> extents = FaceExtents(dims_, side_, j);
    if (extents.empty()) {
      faces_.emplace_back();
      continue;
    }
    faces_.emplace_back(Shape(std::move(extents)));
    face_present_[static_cast<size_t>(j)] = true;
    laid_out += faces_.back().size();
  }
  DDC_CHECK(laid_out == storage_cells_);
}

int64_t OverlayBoxArray::ValueAt(const Cell& offset,
                                 OpCounters* counters) const {
  DDC_DCHECK(static_cast<int>(offset.size()) == dims_);
  if (counters != nullptr) ++counters->values_read;
  if (dims_ == 1) {
    DDC_DCHECK(offset[0] == side_ - 1);
    return scalar_;
  }
  int face = -1;
  for (int j = 0; j < dims_; ++j) {
    if (offset[static_cast<size_t>(j)] == side_ - 1) {
      face = j;
      break;
    }
  }
  DDC_CHECK(face >= 0);  // Caller must pass a far-face offset.
  DDC_DCHECK(face_present_[static_cast<size_t>(face)]);
  return faces_[static_cast<size_t>(face)].at(ProjectToFace(offset, face));
}

void OverlayBoxArray::SetValueAt(const Cell& offset, int64_t value) {
  DDC_DCHECK(static_cast<int>(offset.size()) == dims_);
  if (dims_ == 1) {
    DDC_DCHECK(offset[0] == side_ - 1);
    scalar_ = value;
    return;
  }
  int face = -1;
  for (int j = 0; j < dims_; ++j) {
    if (offset[static_cast<size_t>(j)] == side_ - 1) {
      face = j;
      break;
    }
  }
  DDC_CHECK(face >= 0);
  faces_[static_cast<size_t>(face)].at(ProjectToFace(offset, face)) = value;
}

int64_t OverlayBoxArray::Subtotal(OpCounters* counters) const {
  return ValueAt(Cell(static_cast<size_t>(dims_), side_ - 1), counters);
}

void OverlayBoxArray::ApplyDelta(const Cell& updated_offset, int64_t delta,
                                 OpCounters* counters) {
  DDC_DCHECK(static_cast<int>(updated_offset.size()) == dims_);
  if (delta == 0) return;
  if (dims_ == 1) {
    scalar_ += delta;
    if (counters != nullptr) ++counters->values_written;
    return;
  }
  // Every stored offset x with x >= updated_offset componentwise contains
  // the updated cell in its prefix region. Visit each face's rectangle of
  // such offsets.
  for (int j = 0; j < dims_; ++j) {
    if (!face_present_[static_cast<size_t>(j)]) continue;
    MdArray<int64_t>& face = faces_[static_cast<size_t>(j)];
    const Shape& shape = face.shape();
    // Transverse lower bounds: the updated offset's coordinates in every
    // dimension except j (x_j == side-1 >= updated_offset[j] always holds).
    Cell lo = ProjectToFace(updated_offset, j);
    bool empty = false;
    for (int t = 0; t < shape.dims(); ++t) {
      if (lo[static_cast<size_t>(t)] > shape.extent(t) - 1) {
        empty = true;  // The updated cell's offset is itself maxed in a
                       // dimension below j; those values live on an earlier
                       // face.
        break;
      }
    }
    if (empty) continue;
    Cell cursor = lo;
    while (true) {
      face.at(cursor) += delta;
      if (counters != nullptr) ++counters->values_written;
      int dim = shape.dims() - 1;
      while (dim >= 0) {
        size_t ud = static_cast<size_t>(dim);
        if (++cursor[ud] < shape.extent(dim)) break;
        cursor[ud] = lo[ud];
        --dim;
      }
      if (dim < 0) break;
    }
  }
}

}  // namespace ddc
