// The Cumulative B Tree (B_c tree) of Section 4.1.
//
// A B_c tree stores one set of overlay row-sum values. It modifies a
// standard b-tree in two ways (quoting the paper):
//
//  1. Keys are the *indices* of the row-sum cells, not their data values, so
//     leaves appear in the same order as the row-sum cells in the overlay
//     box. Leaves store the sum of each *individual* row; cumulative row
//     sums are generated on demand.
//  2. Interior nodes additionally maintain subtree sums (STS): for each
//     entry, the sum of the subtree reached through the branch left of the
//     entry. A cumulative query descends the tree adding every preceding STS
//     in each visited node (O(f log_f k)); an update adjusts at most one STS
//     per visited node (O(log_f k)).
//
// Because keys are the dense integers 0..capacity-1 known a priori, the tree
// shape is fixed by (capacity, fanout) and nodes are materialized lazily:
// subtrees that are entirely zero occupy no memory. This gives the sparse
// behaviour Section 5 relies on while keeping the paper's node layout
// (per-entry STS, data in the leaves, bottom-up update of one STS per level).
//
// Memory layout (cache-conscious, see DESIGN.md §13). A node is one arena
// slab: f subtree sums followed, for interior nodes, by f child pointers.
// The slab is aligned so the sum array never straddles a cache line — at the
// tuned default fanout 8 the sums are exactly one 64-byte line, so one
// descent level costs one line fill (plus one pointer line for interior
// nodes). Descents are branchless: power-of-two fanouts replace the
// per-level div/mod with shift/mask, and the per-entry STS compare loop is
// a predicated whole-line masked sum (kernels::MaskedPrefixSum). The
// pre-optimization scalar descent is retained verbatim and reachable via
// kernels::ForceScalar — it is the semantic contract the differential tests
// pin the optimized path against, bit-exactly.
//
// Layouts:
//  * kSparse (default): lazily materialized pointer tree, as in the paper.
//  * kDense: the whole conceptual tree as one flat 64-byte-aligned slab in
//    BFS (Eytzinger-style) order with implicit child addressing
//    (child(slot, c) = slot*f + 1 + c) — no child pointers at all, so a
//    descent is pure arithmetic over contiguous memory. Costs
//    (f^height - 1)/(f - 1) * f entries regardless of population, so it
//    suits dense a-priori key spaces (bulk-built faces), not the sparse
//    Section 5 regime.

#ifndef DDC_BCTREE_BC_TREE_H_
#define DDC_BCTREE_BC_TREE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "bctree/cumulative_store.h"
#include "common/arena.h"

namespace ddc {

// Node placement strategy; see the header comment.
enum class BcLayout { kSparse, kDense };

class BcTree : public CumulativeStore1D {
 public:
  // Tuned on the bench_kernels fanout sweep (7/8/15/16): 8 sums * 8 bytes =
  // exactly one 64-byte cache line per descent level, which beat both the
  // shallower two-line fanout-16 tree and the odd fanouts that lose the
  // shift/mask addressing. See ddc_options.h for the recorded numbers.
  static constexpr int kDefaultFanout = 8;

  // Creates an all-zero tree holding `capacity` row sums. `fanout` is the
  // maximum number of children per node (>= 2). Nodes are allocated from
  // `arena` when given (not owned; must outlive the tree), otherwise from a
  // private arena.
  explicit BcTree(int64_t capacity, int fanout = kDefaultFanout,
                  Arena* arena = nullptr, BcLayout layout = BcLayout::kSparse);

  BcTree(const BcTree&) = delete;
  BcTree& operator=(const BcTree&) = delete;

  // Bulk-builds the tree bottom-up from `values` (one per index; shorter
  // vectors are zero-extended). The tree must be empty. Writes each stored
  // entry exactly once — O(capacity) instead of O(capacity log capacity)
  // repeated Adds — and (in the sparse layout) materializes only subtrees
  // with nonzero content. Subtree totals accumulate through the vectorized
  // block-sum kernel.
  void BuildFrom(const std::vector<int64_t>& values);

  void Add(int64_t index, int64_t delta) override;
  int64_t CumulativeSum(int64_t index) const override;
  int64_t Value(int64_t index) const override;
  int64_t TotalSum() const override { return total_; }
  int64_t capacity() const override { return capacity_; }
  int64_t StorageCells() const override { return allocated_entries_; }

  int fanout() const { return fanout_; }
  BcLayout layout() const { return layout_; }

  // Height of the (conceptual) tree: number of levels including the leaf
  // level; a single-leaf tree has height 1.
  int height() const { return height_; }

  // Verifies the STS invariant over all materialized nodes: every interior
  // entry equals the total of the child subtree it summarizes. Returns true
  // when consistent. Test-support API.
  bool CheckInvariants() const;

 private:
  // A node is an opaque pointer to one aligned arena slab:
  //   [ f x int64_t sums ][ f x Node* children ]   (interior)
  //   [ f x int64_t sums ]                         (leaf)
  // Whether a node is a leaf is implied by its span (span == fanout), so no
  // flag is stored and the two shapes share one handle type.
  struct Node;

  int64_t* NodeSums(Node* node) const {
    return reinterpret_cast<int64_t*>(node);
  }
  const int64_t* NodeSums(const Node* node) const {
    return reinterpret_cast<const int64_t*>(node);
  }
  Node** NodeChildren(Node* node) const {
    return reinterpret_cast<Node**>(reinterpret_cast<int64_t*>(node) +
                                    fanout_);
  }
  Node* const* NodeChildren(const Node* node) const {
    return reinterpret_cast<Node* const*>(
        reinterpret_cast<const int64_t*>(node) + fanout_);
  }

  // Allocates a node slab (leaves carry no child array), zeroed, aligned so
  // the sum array never straddles a cache line. Counts the f stored entries.
  Node* NewNode(bool is_leaf);

  // Optimized descents, specialized on whether the fanout supports
  // shift/mask child addressing.
  template <bool kPow2>
  void AddFast(int64_t index, int64_t delta);
  template <bool kPow2>
  int64_t CumulativeSumFast(int64_t index) const;

  // The pre-optimization scalar reference descents (verbatim seed shape:
  // per-level div/mod, early-terminating per-entry STS loop). Reached via
  // kernels::ForceScalar; bit-exact with the fast paths by construction,
  // which kernel_layout_test verifies.
  void AddScalarRef(int64_t index, int64_t delta);
  int64_t CumulativeSumScalarRef(int64_t index) const;

  // Dense-layout (implicit-addressing) operations.
  void EnsureDense();
  void AddDense(int64_t index, int64_t delta);
  int64_t CumulativeSumDense(int64_t index) const;
  int64_t ValueDense(int64_t index) const;
  void BuildFromDense(const std::vector<int64_t>& values);

  // Builds the subtree covering values[lo, lo+span); returns nullptr when
  // the range is entirely zero. Sets *subtree_total.
  Node* BuildRange(const std::vector<int64_t>& values, int64_t lo,
                   int64_t span, int64_t* subtree_total);
  bool CheckNode(const Node* node, int64_t span) const;
  int64_t NodeTotal(const Node* node) const;

  int64_t capacity_;
  int fanout_;
  BcLayout layout_;
  int height_;
  int64_t root_span_;  // fanout_^(height_-1) * fanout_ covers >= capacity_
  int log2_fanout_;    // log2(fanout_) when a power of two, else -1.
  int64_t total_ = 0;
  int64_t allocated_entries_ = 0;
  std::unique_ptr<Arena> owned_arena_;  // Set only for standalone trees.
  Arena* arena_;
  Node* root_ = nullptr;       // Sparse layout.
  int64_t* dense_ = nullptr;   // Dense layout: dense_slots_ * fanout_ sums.
  int64_t dense_slots_ = 0;    // (fanout^height - 1) / (fanout - 1).
};

}  // namespace ddc

#endif  // DDC_BCTREE_BC_TREE_H_
