// The Cumulative B Tree (B_c tree) of Section 4.1.
//
// A B_c tree stores one set of overlay row-sum values. It modifies a
// standard b-tree in two ways (quoting the paper):
//
//  1. Keys are the *indices* of the row-sum cells, not their data values, so
//     leaves appear in the same order as the row-sum cells in the overlay
//     box. Leaves store the sum of each *individual* row; cumulative row
//     sums are generated on demand.
//  2. Interior nodes additionally maintain subtree sums (STS): for each
//     entry, the sum of the subtree reached through the branch left of the
//     entry. A cumulative query descends the tree adding every preceding STS
//     in each visited node (O(f log_f k)); an update adjusts at most one STS
//     per visited node (O(log_f k)).
//
// Because keys are the dense integers 0..capacity-1 known a priori, the tree
// shape is fixed by (capacity, fanout) and nodes are materialized lazily:
// subtrees that are entirely zero occupy no memory. This gives the sparse
// behaviour Section 5 relies on while keeping the paper's node layout
// (per-entry STS, data in the leaves, bottom-up update of one STS per level).
//
// Memory layout: nodes live in an Arena — either one passed in (the owning
// cube's arena, so a face's tree sits next to the box that owns it) or a
// private one for standalone trees. A node is a fixed pair of inline arena
// arrays (f sums, f child pointers; leaves have no child array), replacing
// the seed's vector-of-unique_ptr layout: one descent now walks allocation-
// ordered memory instead of chasing per-node heap blocks. Whether a node is
// a leaf is implied by its span (span == fanout), so no flag is stored.

#ifndef DDC_BCTREE_BC_TREE_H_
#define DDC_BCTREE_BC_TREE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "bctree/cumulative_store.h"
#include "common/arena.h"

namespace ddc {

class BcTree : public CumulativeStore1D {
 public:
  static constexpr int kDefaultFanout = 8;

  // Creates an all-zero tree holding `capacity` row sums. `fanout` is the
  // maximum number of children per node (>= 2). Nodes are allocated from
  // `arena` when given (not owned; must outlive the tree), otherwise from a
  // private arena.
  explicit BcTree(int64_t capacity, int fanout = kDefaultFanout,
                  Arena* arena = nullptr);

  BcTree(const BcTree&) = delete;
  BcTree& operator=(const BcTree&) = delete;

  // Bulk-builds the tree bottom-up from `values` (one per index; shorter
  // vectors are zero-extended). The tree must be empty. Writes each stored
  // entry exactly once — O(capacity) instead of O(capacity log capacity)
  // repeated Adds — and materializes only subtrees with nonzero content.
  void BuildFrom(const std::vector<int64_t>& values);

  void Add(int64_t index, int64_t delta) override;
  int64_t CumulativeSum(int64_t index) const override;
  int64_t Value(int64_t index) const override;
  int64_t TotalSum() const override { return total_; }
  int64_t capacity() const override { return capacity_; }
  int64_t StorageCells() const override { return allocated_entries_; }

  int fanout() const { return fanout_; }

  // Height of the (conceptual) tree: number of levels including the leaf
  // level; a single-leaf tree has height 1.
  int height() const { return height_; }

  // Verifies the STS invariant over all materialized nodes: every interior
  // entry equals the total of the child subtree it summarizes. Returns true
  // when consistent. Test-support API.
  bool CheckInvariants() const;

 private:
  struct Node {
    // Interior: sums[i] is the STS of children[i] (the paper stores f-1 STS
    // values and derives the last branch; storing all f child sums is an
    // equivalent layout and is what we count as storage).
    // Leaf: sums[i] is the individual row-sum value at index lo + i, and
    // children is null.
    int64_t* sums = nullptr;
    Node** children = nullptr;
  };

  // Allocates a node with its inline arrays; `is_leaf` nodes carry no child
  // array. Counts the f stored entries.
  Node* NewNode(bool is_leaf);
  Node* EnsureChild(Node* node, size_t child_index, bool child_is_leaf);
  // Builds the subtree covering values[lo, lo+span); returns nullptr when
  // the range is entirely zero. Sets *subtree_total.
  Node* BuildRange(const std::vector<int64_t>& values, int64_t lo,
                   int64_t span, int64_t* subtree_total);
  bool CheckNode(const Node* node, int64_t span) const;
  int64_t NodeTotal(const Node* node) const;

  int64_t capacity_;
  int fanout_;
  int height_;
  int64_t root_span_;  // fanout_^(height_-1) * fanout_ covers >= capacity_
  int64_t total_ = 0;
  int64_t allocated_entries_ = 0;
  std::unique_ptr<Arena> owned_arena_;  // Set only for standalone trees.
  Arena* arena_;
  Node* root_ = nullptr;
};

}  // namespace ddc

#endif  // DDC_BCTREE_BC_TREE_H_
