// FenwickTree: a binary-indexed tree over a fixed capacity, used as an
// ablation comparator for the B_c tree (same O(log k) cumulative-sum and
// update complexity, different constant factors and storage profile: the
// Fenwick tree is dense, the B_c tree is lazily materialized).

#ifndef DDC_BCTREE_FENWICK_TREE_H_
#define DDC_BCTREE_FENWICK_TREE_H_

#include <cstdint>
#include <vector>

#include "bctree/cumulative_store.h"

namespace ddc {

class FenwickTree : public CumulativeStore1D {
 public:
  explicit FenwickTree(int64_t capacity);

  FenwickTree(const FenwickTree&) = delete;
  FenwickTree& operator=(const FenwickTree&) = delete;

  // Bulk-builds from `values` (one per index; shorter vectors are
  // zero-extended). The tree must be empty. One O(capacity) in-place
  // propagation pass — each tree cell is written once and pushed to its
  // parent once — instead of the O(capacity log capacity) loop of Adds; the
  // grand total accumulates through the vectorized block-sum kernel.
  void BuildFrom(const std::vector<int64_t>& values);

  void Add(int64_t index, int64_t delta) override;
  int64_t CumulativeSum(int64_t index) const override;
  int64_t Value(int64_t index) const override;
  int64_t TotalSum() const override { return total_; }
  int64_t capacity() const override { return capacity_; }
  int64_t StorageCells() const override { return capacity_; }

 private:
  int64_t capacity_;
  int64_t total_ = 0;
  std::vector<int64_t> tree_;  // 1-based implicit binary indexed tree.
};

}  // namespace ddc

#endif  // DDC_BCTREE_FENWICK_TREE_H_
