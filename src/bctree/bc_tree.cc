#include "bctree/bc_tree.h"

#include <cstring>

#include "common/bit_util.h"
#include "common/check.h"
#include "common/kernels.h"

namespace ddc {

namespace {

// Smallest power-of-two alignment that keeps a sum array of `sums_bytes`
// inside one cache line (or line-aligned when it fills one or more whole
// lines). 16 is the floor so small-fanout slabs stay naturally aligned for
// their pointer halves too.
size_t NodeSlabAlign(size_t sums_bytes) {
  size_t align = 16;
  while (align < sums_bytes && align < Arena::kMaxAlign) align <<= 1;
  return align;
}

}  // namespace

BcTree::BcTree(int64_t capacity, int fanout, Arena* arena, BcLayout layout)
    : capacity_(capacity), fanout_(fanout), layout_(layout) {
  DDC_CHECK(capacity_ >= 1);
  DDC_CHECK(fanout_ >= 2);
  if (arena == nullptr) {
    owned_arena_ = std::make_unique<Arena>();
    arena = owned_arena_.get();
  }
  arena_ = arena;
  height_ = 1;
  root_span_ = fanout_;
  while (root_span_ < capacity_) {
    root_span_ *= fanout_;
    ++height_;
  }
  log2_fanout_ = IsPowerOfTwo(fanout_) ? FloorLog2(fanout_) : -1;
  if (layout_ == BcLayout::kDense) {
    // BFS slot count of the full conceptual tree: 1 + f + ... + f^(h-1).
    int64_t level_slots = 1;
    for (int level = 0; level < height_; ++level) {
      dense_slots_ += level_slots;
      level_slots *= fanout_;
    }
  }
}

BcTree::Node* BcTree::NewNode(bool is_leaf) {
  const size_t f = static_cast<size_t>(fanout_);
  const size_t sums_bytes = f * sizeof(int64_t);
  const size_t bytes = is_leaf ? sums_bytes : sums_bytes + f * sizeof(Node*);
  void* slab = arena_->Allocate(bytes, NodeSlabAlign(sums_bytes));
  std::memset(slab, 0, bytes);
  // The cache-line contract: a node's sum array either fits entirely inside
  // one 64-byte line or starts exactly on a line boundary.
  DDC_DCHECK(sums_bytes >= 64
                 ? reinterpret_cast<uintptr_t>(slab) % 64 == 0
                 : reinterpret_cast<uintptr_t>(slab) % 64 + sums_bytes <= 64);
  allocated_entries_ += fanout_;
  return static_cast<Node*>(slab);
}

void BcTree::EnsureDense() {
  if (dense_ != nullptr) return;
  const size_t entries =
      static_cast<size_t>(dense_slots_) * static_cast<size_t>(fanout_);
  dense_ = static_cast<int64_t*>(
      arena_->AllocateAligned(entries * sizeof(int64_t)));
  std::memset(dense_, 0, entries * sizeof(int64_t));
  allocated_entries_ += dense_slots_ * fanout_;
}

// ---------------------------------------------------------------------------
// BuildFrom.

BcTree::Node* BcTree::BuildRange(const std::vector<int64_t>& values,
                                 int64_t lo, int64_t span,
                                 int64_t* subtree_total) {
  *subtree_total = 0;
  const int64_t limit = static_cast<int64_t>(values.size());
  if (lo >= limit) return nullptr;
  if (span == fanout_) {
    // Leaf: materialize only if some entry is nonzero. The values are
    // contiguous, so total and occupancy are two vectorizable passes.
    const int64_t count = std::min<int64_t>(fanout_, limit - lo);
    const int64_t* src = values.data() + lo;
    *subtree_total = kernels::Sum(src, static_cast<size_t>(count));
    int64_t any_bits = 0;
    for (int64_t i = 0; i < count; ++i) any_bits |= src[i];
    if (any_bits == 0) return nullptr;
    Node* node = NewNode(/*is_leaf=*/true);
    std::memcpy(NodeSums(node), src,
                static_cast<size_t>(count) * sizeof(int64_t));
    return node;
  }

  // Interior: build the children first (into stack temporaries) so all-zero
  // subtrees never allocate arena memory.
  const int64_t child_span = span / fanout_;
  std::vector<Node*> kids(static_cast<size_t>(fanout_), nullptr);
  std::vector<int64_t> totals(static_cast<size_t>(fanout_), 0);
  bool any_child = false;
  for (int64_t i = 0; i < fanout_; ++i) {
    kids[static_cast<size_t>(i)] =
        BuildRange(values, lo + i * child_span, child_span,
                   &totals[static_cast<size_t>(i)]);
    any_child |= (kids[static_cast<size_t>(i)] != nullptr);
    *subtree_total += totals[static_cast<size_t>(i)];
  }
  if (!any_child) return nullptr;
  Node* node = NewNode(/*is_leaf=*/false);
  std::memcpy(NodeSums(node), totals.data(),
              static_cast<size_t>(fanout_) * sizeof(int64_t));
  std::memcpy(NodeChildren(node), kids.data(),
              static_cast<size_t>(fanout_) * sizeof(Node*));
  return node;
}

void BcTree::BuildFromDense(const std::vector<int64_t>& values) {
  EnsureDense();
  const int64_t f = fanout_;
  // Leaf level: slots [first_leaf, dense_slots_), leaf i holds values
  // [i*f, (i+1)*f).
  const int64_t num_leaves = root_span_ / f;
  const int64_t first_leaf = dense_slots_ - num_leaves;
  const int64_t limit = static_cast<int64_t>(values.size());
  for (int64_t i = 0; i * f < limit; ++i) {
    const int64_t count = std::min<int64_t>(f, limit - i * f);
    std::memcpy(dense_ + (first_leaf + i) * f, values.data() + i * f,
                static_cast<size_t>(count) * sizeof(int64_t));
  }
  // Interior levels, bottom-up: each STS is the (vectorized) total of the
  // child slot it summarizes.
  for (int64_t slot = first_leaf - 1; slot >= 0; --slot) {
    int64_t* sums = dense_ + slot * f;
    const int64_t first_child = slot * f + 1;
    for (int64_t c = 0; c < f; ++c) {
      sums[c] = kernels::Sum(dense_ + (first_child + c) * f,
                             static_cast<size_t>(f));
    }
  }
  total_ = kernels::Sum(dense_, static_cast<size_t>(f));
}

void BcTree::BuildFrom(const std::vector<int64_t>& values) {
  DDC_CHECK(root_ == nullptr && dense_ == nullptr && total_ == 0);
  DDC_CHECK(static_cast<int64_t>(values.size()) <= capacity_);
  if (layout_ == BcLayout::kDense) {
    BuildFromDense(values);
    return;
  }
  int64_t total = 0;
  root_ = BuildRange(values, 0, root_span_, &total);
  total_ = total;
}

// ---------------------------------------------------------------------------
// Update path.

template <bool kPow2>
void BcTree::AddFast(int64_t index, int64_t delta) {
  if (root_ == nullptr) root_ = NewNode(/*is_leaf=*/height_ == 1);
  Node* node = root_;
  int64_t offset = index;
  int shift = kPow2 ? log2_fanout_ * (height_ - 1) : 0;
  int64_t child_span = root_span_ / fanout_;
  for (int level = height_; level > 1; --level) {
    CountNode();
    size_t child;
    if constexpr (kPow2) {
      child = static_cast<size_t>(offset >> shift);
      offset &= (int64_t{1} << shift) - 1;
      shift -= log2_fanout_;
    } else {
      child = static_cast<size_t>(offset / child_span);
      offset %= child_span;
      child_span /= fanout_;
    }
    // One STS adjusted per visited node (the subtree containing the changed
    // cell), exactly as in the paper's bottom-up walkthrough.
    NodeSums(node)[child] += delta;
    CountWrite(1);
    Node*& slot = NodeChildren(node)[child];
    if (slot == nullptr) slot = NewNode(/*is_leaf=*/level == 2);
    node = slot;
  }
  CountNode();
  NodeSums(node)[static_cast<size_t>(offset)] += delta;
  CountWrite(1);
}

void BcTree::AddScalarRef(int64_t index, int64_t delta) {
  if (root_ == nullptr) root_ = NewNode(/*is_leaf=*/height_ == 1);
  Node* node = root_;
  int64_t span = root_span_;
  int64_t offset = index;
  while (span > fanout_) {
    CountNode();
    const int64_t child_span = span / fanout_;
    const size_t child = static_cast<size_t>(offset / child_span);
    NodeSums(node)[child] += delta;
    CountWrite(1);
    Node*& slot = NodeChildren(node)[child];
    if (slot == nullptr) slot = NewNode(/*is_leaf=*/child_span == fanout_);
    node = slot;
    offset %= child_span;
    span = child_span;
  }
  CountNode();
  NodeSums(node)[static_cast<size_t>(offset)] += delta;
  CountWrite(1);
}

void BcTree::AddDense(int64_t index, int64_t delta) {
  EnsureDense();
  const int64_t f = fanout_;
  int64_t slot = 0;
  int64_t offset = index;
  int shift = log2_fanout_ > 0 ? log2_fanout_ * (height_ - 1) : 0;
  int64_t child_span = root_span_ / f;
  for (int level = height_; level > 1; --level) {
    CountNode();
    int64_t child;
    if (log2_fanout_ > 0) {
      child = offset >> shift;
      offset &= (int64_t{1} << shift) - 1;
      shift -= log2_fanout_;
    } else {
      child = offset / child_span;
      offset %= child_span;
      child_span /= f;
    }
    dense_[slot * f + child] += delta;
    CountWrite(1);
    slot = slot * f + 1 + child;
  }
  CountNode();
  dense_[slot * f + offset] += delta;
  CountWrite(1);
}

void BcTree::Add(int64_t index, int64_t delta) {
  DDC_CHECK(index >= 0 && index < capacity_);
  if (delta == 0) return;
  total_ += delta;
  if (layout_ == BcLayout::kDense) {
    AddDense(index, delta);
    return;
  }
  if (kernels::UseScalar()) {
    AddScalarRef(index, delta);
    return;
  }
  if (log2_fanout_ > 0) {
    AddFast<true>(index, delta);
  } else {
    AddFast<false>(index, delta);
  }
}

// ---------------------------------------------------------------------------
// Query path.

template <bool kPow2>
int64_t BcTree::CumulativeSumFast(int64_t index) const {
  const Node* node = root_;
  int64_t offset = index;
  int shift = kPow2 ? log2_fanout_ * (height_ - 1) : 0;
  int64_t child_span = root_span_ / fanout_;
  int64_t sum = 0;
  const size_t f = static_cast<size_t>(fanout_);
  for (int level = height_; level > 1; --level) {
    CountNode();
    size_t child;
    if constexpr (kPow2) {
      child = static_cast<size_t>(offset >> shift);
      offset &= (int64_t{1} << shift) - 1;
      shift -= log2_fanout_;
    } else {
      child = static_cast<size_t>(offset / child_span);
      offset %= child_span;
      child_span /= fanout_;
    }
    // Every STS preceding the descended branch, as one predicated line scan.
    sum += kernels::MaskedPrefixSum(NodeSums(node), f, child);
    CountRead(static_cast<int64_t>(child));
    const Node* next = NodeChildren(node)[child];
    if (next == nullptr) return sum;  // Unmaterialized subtree: all zero.
    node = next;
  }
  CountNode();
  sum += kernels::MaskedPrefixSum(NodeSums(node), f,
                                  static_cast<size_t>(offset) + 1);
  CountRead(offset + 1);
  return sum;
}

int64_t BcTree::CumulativeSumScalarRef(int64_t index) const {
  const Node* node = root_;
  int64_t span = root_span_;
  int64_t offset = index;
  int64_t sum = 0;
  while (true) {
    CountNode();
    if (span == fanout_) {
      // Leaf: sum of the individual row values up to and including `offset`.
      for (int64_t i = 0; i <= offset; ++i) {
        sum += NodeSums(node)[static_cast<size_t>(i)];
      }
      CountRead(offset + 1);
      return sum;
    }
    const int64_t child_span = span / fanout_;
    const size_t child = static_cast<size_t>(offset / child_span);
    // Add every STS preceding the branch we descend.
    for (size_t i = 0; i < child; ++i) {
      sum += NodeSums(node)[i];
    }
    CountRead(static_cast<int64_t>(child));
    if (NodeChildren(node)[child] == nullptr) {
      return sum;  // Unmaterialized subtree: all zero.
    }
    node = NodeChildren(node)[child];
    offset %= child_span;
    span = child_span;
  }
}

int64_t BcTree::CumulativeSumDense(int64_t index) const {
  if (dense_ == nullptr) return 0;
  const int64_t f = fanout_;
  int64_t slot = 0;
  int64_t offset = index;
  int shift = log2_fanout_ > 0 ? log2_fanout_ * (height_ - 1) : 0;
  int64_t child_span = root_span_ / f;
  int64_t sum = 0;
  for (int level = height_; level > 1; --level) {
    CountNode();
    int64_t child;
    if (log2_fanout_ > 0) {
      child = offset >> shift;
      offset &= (int64_t{1} << shift) - 1;
      shift -= log2_fanout_;
    } else {
      child = offset / child_span;
      offset %= child_span;
      child_span /= f;
    }
    sum += kernels::MaskedPrefixSum(dense_ + slot * f, static_cast<size_t>(f),
                                    static_cast<size_t>(child));
    CountRead(child);
    slot = slot * f + 1 + child;
  }
  CountNode();
  sum += kernels::MaskedPrefixSum(dense_ + slot * f, static_cast<size_t>(f),
                                  static_cast<size_t>(offset) + 1);
  CountRead(offset + 1);
  return sum;
}

int64_t BcTree::CumulativeSum(int64_t index) const {
  DDC_CHECK(index >= 0 && index < capacity_);
  if (layout_ == BcLayout::kDense) return CumulativeSumDense(index);
  if (root_ == nullptr) return 0;
  if (kernels::UseScalar()) return CumulativeSumScalarRef(index);
  if (log2_fanout_ > 0) return CumulativeSumFast<true>(index);
  return CumulativeSumFast<false>(index);
}

int64_t BcTree::ValueDense(int64_t index) const {
  if (dense_ == nullptr) return 0;
  const int64_t f = fanout_;
  int64_t slot = 0;
  int64_t offset = index;
  int64_t child_span = root_span_ / f;
  for (int level = height_; level > 1; --level) {
    const int64_t child = offset / child_span;
    offset %= child_span;
    child_span /= f;
    slot = slot * f + 1 + child;
  }
  CountRead(1);
  return dense_[slot * f + offset];
}

int64_t BcTree::Value(int64_t index) const {
  DDC_CHECK(index >= 0 && index < capacity_);
  if (layout_ == BcLayout::kDense) return ValueDense(index);
  if (root_ == nullptr) return 0;
  const Node* node = root_;
  int64_t span = root_span_;
  int64_t offset = index;
  while (span > fanout_) {
    const int64_t child_span = span / fanout_;
    const size_t child = static_cast<size_t>(offset / child_span);
    if (NodeChildren(node)[child] == nullptr) return 0;
    node = NodeChildren(node)[child];
    offset %= child_span;
    span = child_span;
  }
  CountRead(1);
  return NodeSums(node)[static_cast<size_t>(offset)];
}

// ---------------------------------------------------------------------------
// Invariant checking.

int64_t BcTree::NodeTotal(const Node* node) const {
  int64_t total = 0;
  for (int64_t i = 0; i < fanout_; ++i) {
    total += NodeSums(node)[static_cast<size_t>(i)];
  }
  return total;
}

bool BcTree::CheckNode(const Node* node, int64_t span) const {
  if (span == fanout_) return true;  // Leaf: nothing below to cross-check.
  const int64_t child_span = span / fanout_;
  for (int64_t i = 0; i < fanout_; ++i) {
    const Node* child = NodeChildren(node)[static_cast<size_t>(i)];
    const int64_t sts = NodeSums(node)[static_cast<size_t>(i)];
    if (child == nullptr) {
      if (sts != 0) return false;
      continue;
    }
    if (NodeTotal(child) != sts) return false;
    if (!CheckNode(child, child_span)) return false;
  }
  return true;
}

bool BcTree::CheckInvariants() const {
  if (layout_ == BcLayout::kDense) {
    if (dense_ == nullptr) return total_ == 0;
    const int64_t f = fanout_;
    if (kernels::Sum(dense_, static_cast<size_t>(f)) != total_) return false;
    const int64_t first_leaf = dense_slots_ - root_span_ / f;
    for (int64_t slot = 0; slot < first_leaf; ++slot) {
      for (int64_t c = 0; c < f; ++c) {
        const int64_t child_slot = slot * f + 1 + c;
        if (dense_[slot * f + c] !=
            kernels::Sum(dense_ + child_slot * f, static_cast<size_t>(f))) {
          return false;
        }
      }
    }
    return true;
  }
  if (root_ == nullptr) return total_ == 0;
  if (NodeTotal(root_) != total_) return false;
  return CheckNode(root_, root_span_);
}

}  // namespace ddc
