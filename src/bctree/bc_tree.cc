#include "bctree/bc_tree.h"

#include "common/check.h"

namespace ddc {

BcTree::BcTree(int64_t capacity, int fanout)
    : capacity_(capacity), fanout_(fanout) {
  DDC_CHECK(capacity_ >= 1);
  DDC_CHECK(fanout_ >= 2);
  height_ = 1;
  root_span_ = fanout_;
  while (root_span_ < capacity_) {
    root_span_ *= fanout_;
    ++height_;
  }
}

BcTree::Node* BcTree::EnsureChild(Node* node, size_t child_index,
                                  bool child_is_leaf) {
  DDC_DCHECK(!node->is_leaf);
  if (node->children.empty()) {
    node->children.resize(static_cast<size_t>(fanout_));
  }
  std::unique_ptr<Node>& slot = node->children[child_index];
  if (slot == nullptr) {
    slot = std::make_unique<Node>();
    slot->is_leaf = child_is_leaf;
    slot->sums.assign(static_cast<size_t>(fanout_), 0);
    allocated_entries_ += fanout_;
  }
  return slot.get();
}

std::unique_ptr<BcTree::Node> BcTree::BuildRange(
    const std::vector<int64_t>& values, int64_t lo, int64_t span,
    int64_t* subtree_total) {
  *subtree_total = 0;
  if (lo >= static_cast<int64_t>(values.size())) return nullptr;
  auto node = std::make_unique<Node>();
  node->sums.assign(static_cast<size_t>(fanout_), 0);
  if (span == fanout_) {
    node->is_leaf = true;
    for (int64_t i = 0; i < fanout_; ++i) {
      const int64_t idx = lo + i;
      if (idx >= static_cast<int64_t>(values.size())) break;
      node->sums[static_cast<size_t>(i)] = values[static_cast<size_t>(idx)];
      *subtree_total += values[static_cast<size_t>(idx)];
    }
  } else {
    const int64_t child_span = span / fanout_;
    node->children.resize(static_cast<size_t>(fanout_));
    for (int64_t i = 0; i < fanout_; ++i) {
      int64_t child_total = 0;
      node->children[static_cast<size_t>(i)] =
          BuildRange(values, lo + i * child_span, child_span, &child_total);
      node->sums[static_cast<size_t>(i)] = child_total;
      *subtree_total += child_total;
    }
  }
  if (*subtree_total == 0) {
    // Only keep all-zero subtrees if some leaf is explicitly nonzero; the
    // values cancel check: a subtree whose every entry is zero (totals and
    // children all empty) carries no information.
    bool any_nonzero = false;
    if (node->is_leaf) {
      for (int64_t v : node->sums) any_nonzero |= (v != 0);
    } else {
      for (const auto& child : node->children) any_nonzero |= (child != nullptr);
    }
    if (!any_nonzero) return nullptr;
  }
  allocated_entries_ += fanout_;
  return node;
}

void BcTree::BuildFrom(const std::vector<int64_t>& values) {
  DDC_CHECK(root_ == nullptr && total_ == 0);
  DDC_CHECK(static_cast<int64_t>(values.size()) <= capacity_);
  int64_t total = 0;
  root_ = BuildRange(values, 0, root_span_, &total);
  total_ = total;
}

void BcTree::Add(int64_t index, int64_t delta) {
  DDC_CHECK(index >= 0 && index < capacity_);
  if (delta == 0) return;
  total_ += delta;
  if (root_ == nullptr) {
    root_ = std::make_unique<Node>();
    root_->is_leaf = (height_ == 1);
    root_->sums.assign(static_cast<size_t>(fanout_), 0);
    allocated_entries_ += fanout_;
  }
  Node* node = root_.get();
  int64_t span = root_span_;
  int64_t offset = index;
  while (!node->is_leaf) {
    CountNode();
    const int64_t child_span = span / fanout_;
    const size_t child = static_cast<size_t>(offset / child_span);
    // One STS adjusted per visited node (the subtree containing the changed
    // cell), exactly as in the paper's bottom-up walkthrough.
    node->sums[child] += delta;
    CountWrite(1);
    node = EnsureChild(node, child, /*child_is_leaf=*/child_span == fanout_);
    offset %= child_span;
    span = child_span;
  }
  CountNode();
  node->sums[static_cast<size_t>(offset)] += delta;
  CountWrite(1);
}

int64_t BcTree::CumulativeSum(int64_t index) const {
  DDC_CHECK(index >= 0 && index < capacity_);
  if (root_ == nullptr) return 0;
  const Node* node = root_.get();
  int64_t span = root_span_;
  int64_t offset = index;
  int64_t sum = 0;
  while (true) {
    CountNode();
    if (node->is_leaf) {
      // Sum of the individual row values up to and including `offset`.
      for (int64_t i = 0; i <= offset; ++i) {
        sum += node->sums[static_cast<size_t>(i)];
      }
      CountRead(offset + 1);
      return sum;
    }
    const int64_t child_span = span / fanout_;
    const size_t child = static_cast<size_t>(offset / child_span);
    // Add every STS preceding the branch we descend.
    for (size_t i = 0; i < child; ++i) {
      sum += node->sums[i];
    }
    CountRead(static_cast<int64_t>(child));
    if (node->children.empty() || node->children[child] == nullptr) {
      return sum;  // Unmaterialized subtree: all zero.
    }
    node = node->children[child].get();
    offset %= child_span;
    span = child_span;
  }
}

int64_t BcTree::Value(int64_t index) const {
  DDC_CHECK(index >= 0 && index < capacity_);
  if (root_ == nullptr) return 0;
  const Node* node = root_.get();
  int64_t span = root_span_;
  int64_t offset = index;
  while (!node->is_leaf) {
    const int64_t child_span = span / fanout_;
    const size_t child = static_cast<size_t>(offset / child_span);
    if (node->children.empty() || node->children[child] == nullptr) return 0;
    node = node->children[child].get();
    offset %= child_span;
    span = child_span;
  }
  CountRead(1);
  return node->sums[static_cast<size_t>(offset)];
}

int64_t BcTree::NodeTotal(const Node* node) {
  int64_t total = 0;
  for (int64_t v : node->sums) total += v;
  return total;
}

bool BcTree::CheckNode(const Node* node, int64_t span) const {
  if (node->is_leaf) {
    return span == fanout_;
  }
  if (span <= fanout_) return false;
  const int64_t child_span = span / fanout_;
  if (node->children.empty()) {
    // All STS must then be zero... not necessarily: children vector is only
    // created on first materialization, so an interior node always has it
    // once any STS is nonzero. An interior node without children must be
    // all-zero.
    return NodeTotal(node) == 0;
  }
  for (size_t i = 0; i < node->children.size(); ++i) {
    const Node* child = node->children[i].get();
    const int64_t sts = node->sums[i];
    if (child == nullptr) {
      if (sts != 0) return false;
      continue;
    }
    if (NodeTotal(child) != sts) return false;
    if (!CheckNode(child, child_span)) return false;
  }
  return true;
}

bool BcTree::CheckInvariants() const {
  if (root_ == nullptr) return total_ == 0;
  if (NodeTotal(root_.get()) != total_) return false;
  return CheckNode(root_.get(), root_span_);
}

}  // namespace ddc
