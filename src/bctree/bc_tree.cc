#include "bctree/bc_tree.h"

#include "common/check.h"

namespace ddc {

BcTree::BcTree(int64_t capacity, int fanout, Arena* arena)
    : capacity_(capacity), fanout_(fanout) {
  DDC_CHECK(capacity_ >= 1);
  DDC_CHECK(fanout_ >= 2);
  if (arena == nullptr) {
    owned_arena_ = std::make_unique<Arena>();
    arena = owned_arena_.get();
  }
  arena_ = arena;
  height_ = 1;
  root_span_ = fanout_;
  while (root_span_ < capacity_) {
    root_span_ *= fanout_;
    ++height_;
  }
}

BcTree::Node* BcTree::NewNode(bool is_leaf) {
  Node* node = arena_->Create<Node>();
  node->sums = arena_->CreateArray<int64_t>(static_cast<size_t>(fanout_));
  if (!is_leaf) {
    node->children = arena_->CreateArray<Node*>(static_cast<size_t>(fanout_));
  }
  allocated_entries_ += fanout_;
  return node;
}

BcTree::Node* BcTree::EnsureChild(Node* node, size_t child_index,
                                  bool child_is_leaf) {
  DDC_DCHECK(node->children != nullptr);
  Node*& slot = node->children[child_index];
  if (slot == nullptr) slot = NewNode(child_is_leaf);
  return slot;
}

BcTree::Node* BcTree::BuildRange(const std::vector<int64_t>& values,
                                 int64_t lo, int64_t span,
                                 int64_t* subtree_total) {
  *subtree_total = 0;
  if (lo >= static_cast<int64_t>(values.size())) return nullptr;
  if (span == fanout_) {
    // Leaf: materialize only if some entry is nonzero.
    bool any_nonzero = false;
    for (int64_t i = 0; i < fanout_; ++i) {
      const int64_t idx = lo + i;
      if (idx >= static_cast<int64_t>(values.size())) break;
      const int64_t v = values[static_cast<size_t>(idx)];
      *subtree_total += v;
      any_nonzero |= (v != 0);
    }
    if (!any_nonzero) return nullptr;
    Node* node = NewNode(/*is_leaf=*/true);
    for (int64_t i = 0; i < fanout_; ++i) {
      const int64_t idx = lo + i;
      if (idx >= static_cast<int64_t>(values.size())) break;
      node->sums[static_cast<size_t>(i)] = values[static_cast<size_t>(idx)];
    }
    return node;
  }

  // Interior: build the children first (into stack temporaries) so all-zero
  // subtrees never allocate arena memory.
  const int64_t child_span = span / fanout_;
  std::vector<Node*> kids(static_cast<size_t>(fanout_), nullptr);
  std::vector<int64_t> totals(static_cast<size_t>(fanout_), 0);
  bool any_child = false;
  for (int64_t i = 0; i < fanout_; ++i) {
    kids[static_cast<size_t>(i)] =
        BuildRange(values, lo + i * child_span, child_span,
                   &totals[static_cast<size_t>(i)]);
    any_child |= (kids[static_cast<size_t>(i)] != nullptr);
    *subtree_total += totals[static_cast<size_t>(i)];
  }
  if (!any_child) return nullptr;
  Node* node = NewNode(/*is_leaf=*/false);
  for (int64_t i = 0; i < fanout_; ++i) {
    node->sums[static_cast<size_t>(i)] = totals[static_cast<size_t>(i)];
    node->children[static_cast<size_t>(i)] = kids[static_cast<size_t>(i)];
  }
  return node;
}

void BcTree::BuildFrom(const std::vector<int64_t>& values) {
  DDC_CHECK(root_ == nullptr && total_ == 0);
  DDC_CHECK(static_cast<int64_t>(values.size()) <= capacity_);
  int64_t total = 0;
  root_ = BuildRange(values, 0, root_span_, &total);
  total_ = total;
}

void BcTree::Add(int64_t index, int64_t delta) {
  DDC_CHECK(index >= 0 && index < capacity_);
  if (delta == 0) return;
  total_ += delta;
  if (root_ == nullptr) root_ = NewNode(/*is_leaf=*/height_ == 1);
  Node* node = root_;
  int64_t span = root_span_;
  int64_t offset = index;
  while (span > fanout_) {
    CountNode();
    const int64_t child_span = span / fanout_;
    const size_t child = static_cast<size_t>(offset / child_span);
    // One STS adjusted per visited node (the subtree containing the changed
    // cell), exactly as in the paper's bottom-up walkthrough.
    node->sums[child] += delta;
    CountWrite(1);
    node = EnsureChild(node, child, /*child_is_leaf=*/child_span == fanout_);
    offset %= child_span;
    span = child_span;
  }
  CountNode();
  node->sums[static_cast<size_t>(offset)] += delta;
  CountWrite(1);
}

int64_t BcTree::CumulativeSum(int64_t index) const {
  DDC_CHECK(index >= 0 && index < capacity_);
  if (root_ == nullptr) return 0;
  const Node* node = root_;
  int64_t span = root_span_;
  int64_t offset = index;
  int64_t sum = 0;
  while (true) {
    CountNode();
    if (span == fanout_) {
      // Leaf: sum of the individual row values up to and including `offset`.
      for (int64_t i = 0; i <= offset; ++i) {
        sum += node->sums[static_cast<size_t>(i)];
      }
      CountRead(offset + 1);
      return sum;
    }
    const int64_t child_span = span / fanout_;
    const size_t child = static_cast<size_t>(offset / child_span);
    // Add every STS preceding the branch we descend.
    for (size_t i = 0; i < child; ++i) {
      sum += node->sums[i];
    }
    CountRead(static_cast<int64_t>(child));
    if (node->children[child] == nullptr) {
      return sum;  // Unmaterialized subtree: all zero.
    }
    node = node->children[child];
    offset %= child_span;
    span = child_span;
  }
}

int64_t BcTree::Value(int64_t index) const {
  DDC_CHECK(index >= 0 && index < capacity_);
  if (root_ == nullptr) return 0;
  const Node* node = root_;
  int64_t span = root_span_;
  int64_t offset = index;
  while (span > fanout_) {
    const int64_t child_span = span / fanout_;
    const size_t child = static_cast<size_t>(offset / child_span);
    if (node->children[child] == nullptr) return 0;
    node = node->children[child];
    offset %= child_span;
    span = child_span;
  }
  CountRead(1);
  return node->sums[static_cast<size_t>(offset)];
}

int64_t BcTree::NodeTotal(const Node* node) const {
  int64_t total = 0;
  for (int64_t i = 0; i < fanout_; ++i) {
    total += node->sums[static_cast<size_t>(i)];
  }
  return total;
}

bool BcTree::CheckNode(const Node* node, int64_t span) const {
  if (span == fanout_) {
    return node->children == nullptr;
  }
  if (node->children == nullptr) return false;
  const int64_t child_span = span / fanout_;
  for (int64_t i = 0; i < fanout_; ++i) {
    const Node* child = node->children[static_cast<size_t>(i)];
    const int64_t sts = node->sums[static_cast<size_t>(i)];
    if (child == nullptr) {
      if (sts != 0) return false;
      continue;
    }
    if (NodeTotal(child) != sts) return false;
    if (!CheckNode(child, child_span)) return false;
  }
  return true;
}

bool BcTree::CheckInvariants() const {
  if (root_ == nullptr) return total_ == 0;
  if (NodeTotal(root_) != total_) return false;
  return CheckNode(root_, root_span_);
}

}  // namespace ddc
