#include "bctree/fenwick_tree.h"

#include <algorithm>

#include "common/check.h"
#include "common/kernels.h"

namespace ddc {

FenwickTree::FenwickTree(int64_t capacity)
    : capacity_(capacity), tree_(static_cast<size_t>(capacity + 1), 0) {
  DDC_CHECK(capacity_ >= 1);
}

void FenwickTree::BuildFrom(const std::vector<int64_t>& values) {
  DDC_CHECK(total_ == 0);
  DDC_CHECK(static_cast<int64_t>(values.size()) <= capacity_);
  total_ = kernels::Sum(values.data(), values.size());
  std::copy(values.begin(), values.end(), tree_.begin() + 1);
  // In-place upward propagation: after the pass, tree_[i] covers the
  // classic BIT range (i - lowbit(i), i].
  for (int64_t i = 1; i <= capacity_; ++i) {
    const int64_t parent = i + (i & (-i));
    if (parent <= capacity_) {
      tree_[static_cast<size_t>(parent)] += tree_[static_cast<size_t>(i)];
    }
  }
}

void FenwickTree::Add(int64_t index, int64_t delta) {
  DDC_CHECK(index >= 0 && index < capacity_);
  if (delta == 0) return;
  total_ += delta;
  for (int64_t i = index + 1; i <= capacity_; i += i & (-i)) {
    tree_[static_cast<size_t>(i)] += delta;
    CountWrite(1);
  }
}

int64_t FenwickTree::CumulativeSum(int64_t index) const {
  DDC_CHECK(index >= 0 && index < capacity_);
  int64_t sum = 0;
  for (int64_t i = index + 1; i > 0; i -= i & (-i)) {
    sum += tree_[static_cast<size_t>(i)];
    CountRead(1);
  }
  return sum;
}

int64_t FenwickTree::Value(int64_t index) const {
  const int64_t hi = CumulativeSum(index);
  return index == 0 ? hi : hi - CumulativeSum(index - 1);
}

}  // namespace ddc
