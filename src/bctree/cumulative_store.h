// CumulativeStore1D: the contract of a one-dimensional cumulative-row-sum
// store as used inside Dynamic Data Cube overlay boxes (Section 4.1).
//
// The store holds `capacity` individual row sums, indexed 0..capacity-1, and
// answers cumulative queries: CumulativeSum(i) = value[0] + ... + value[i].
// The paper's implementation is the B_c tree; a Fenwick tree is provided as
// an ablation comparator with the same asymptotics.

#ifndef DDC_BCTREE_CUMULATIVE_STORE_H_
#define DDC_BCTREE_CUMULATIVE_STORE_H_

#include <cstdint>

#include "common/op_counter.h"

namespace ddc {

class CumulativeStore1D {
 public:
  virtual ~CumulativeStore1D() = default;

  // Adds `delta` to the individual value at `index`.
  virtual void Add(int64_t index, int64_t delta) = 0;

  // Returns value[0] + ... + value[index].
  virtual int64_t CumulativeSum(int64_t index) const = 0;

  // Returns the individual value at `index`.
  virtual int64_t Value(int64_t index) const = 0;

  // Sum of all values; O(1).
  virtual int64_t TotalSum() const = 0;

  virtual int64_t capacity() const = 0;

  // Currently allocated stored entries (lazily allocated structures report
  // only what exists).
  virtual int64_t StorageCells() const = 0;

  // Routes operation counting into an owner's counters; pass nullptr to
  // disable. The store does not own the pointer.
  void set_counters(OpCounters* counters) { counters_ = counters; }

 protected:
  OpCounters* counters_ = nullptr;

  void CountRead(int64_t n) const {
    if (counters_ != nullptr) counters_->values_read += n;
  }
  void CountWrite(int64_t n) const {
    if (counters_ != nullptr) counters_->values_written += n;
  }
  void CountNode() const {
    if (counters_ != nullptr) ++counters_->nodes_visited;
  }
};

}  // namespace ddc

#endif  // DDC_BCTREE_CUMULATIVE_STORE_H_
