// Closed-form cost models from the paper, used by the Table 1 / Figure 1 /
// Table 2 reproduction benches and validated against measured operation
// counts in the test suite.
//
// All functions return double because Table 1 evaluates them up to 1e78,
// far beyond int64 range. n is the size of each dimension, d the number of
// dimensions.

#ifndef DDC_COMMON_COST_MODEL_H_
#define DDC_COMMON_COST_MODEL_H_

#include <cstdint>
#include <string>

namespace ddc {

// Size of the complete data cube: n^d (Table 1, "Full Data Cube Size").
double FullCubeSizeCost(double n, int d);

// Prefix Sum method worst-case update: n^d (Table 1, "Prefix Sum").
double PrefixSumUpdateCost(double n, int d);

// Relative Prefix Sum worst-case update: n^(d/2) (Table 1, "Relative PS").
double RelativePrefixSumUpdateCost(double n, int d);

// Dynamic Data Cube update: (log2 n)^d (Table 1, "Dynamic Data Cube").
double DynamicDataCubeUpdateCost(double n, int d);

// Basic DDC worst-case update, the Section 3.2 series
//   d * [ (n/2)^(d-1) + (n/4)^(d-1) + ... + 1 ]
// which the paper closes to d * (n^(d-1) - 1) / (2^(d-1) - 1) for d >= 2,
// and to log2(n) terms of d*1 for d == 1.
double BasicDdcUpdateCost(double n, int d);

// Storage of one overlay box of side k in d dimensions: k^d - (k-1)^d
// (Section 3.1; Table 2 uses d = 2).
int64_t OverlayBoxStorageCells(int64_t k, int d);

// Size of the region of A covered by one overlay box: k^d.
int64_t OverlayBoxRegionCells(int64_t k, int d);

// Rounds to the nearest power of ten, as Table 1 does ("values are rounded
// to the nearest power of 10"), and renders it as "1E+NN" / exact small
// values. Returns e.g. "1E+16".
std::string RoundToPowerOfTenString(double value);

}  // namespace ddc

#endif  // DDC_COMMON_COST_MODEL_H_
