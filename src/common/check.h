// Lightweight runtime-check macros.
//
// The library does not use C++ exceptions (constructor failure and contract
// violations are programming errors); DDC_CHECK aborts with a diagnostic when
// a stated invariant does not hold. DDC_DCHECK compiles away in NDEBUG builds
// and is used on hot paths.

#ifndef DDC_COMMON_CHECK_H_
#define DDC_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace ddc {
namespace internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "DDC_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace internal
}  // namespace ddc

// Variadic so that expressions containing unparenthesized commas (e.g.
// brace initializers) work.
#define DDC_CHECK(...)                                     \
  do {                                                     \
    if (!(__VA_ARGS__)) {                                  \
      ::ddc::internal::CheckFailed(__FILE__, __LINE__,     \
                                   #__VA_ARGS__);          \
    }                                                      \
  } while (0)

#ifdef NDEBUG
#define DDC_DCHECK(...) \
  do {                  \
  } while (0)
#else
#define DDC_DCHECK(...) DDC_CHECK(__VA_ARGS__)
#endif

#endif  // DDC_COMMON_CHECK_H_
