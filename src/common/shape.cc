#include "common/shape.h"

#include <utility>

#include "common/check.h"

namespace ddc {

Shape::Shape(std::vector<Coord> extents) : extents_(std::move(extents)) {
  DDC_CHECK(!extents_.empty());
  strides_.resize(extents_.size());
  num_cells_ = 1;
  for (int i = static_cast<int>(extents_.size()) - 1; i >= 0; --i) {
    DDC_CHECK(extents_[static_cast<size_t>(i)] >= 1);
    strides_[static_cast<size_t>(i)] = num_cells_;
    num_cells_ *= extents_[static_cast<size_t>(i)];
  }
}

Shape Shape::Cube(int dims, Coord side) {
  DDC_CHECK(dims >= 1);
  return Shape(std::vector<Coord>(static_cast<size_t>(dims), side));
}

bool Shape::Contains(const Cell& cell) const {
  if (cell.size() != extents_.size()) return false;
  for (size_t i = 0; i < cell.size(); ++i) {
    if (cell[i] < 0 || cell[i] >= extents_[i]) return false;
  }
  return true;
}

int64_t Shape::LinearIndex(const Cell& cell) const {
  DDC_DCHECK(Contains(cell));
  int64_t index = 0;
  for (size_t i = 0; i < cell.size(); ++i) {
    index += cell[i] * strides_[i];
  }
  return index;
}

Cell Shape::CellAt(int64_t linear_index) const {
  DDC_DCHECK(linear_index >= 0 && linear_index < num_cells_);
  Cell cell(extents_.size());
  for (size_t i = 0; i < extents_.size(); ++i) {
    cell[i] = linear_index / strides_[i];
    linear_index %= strides_[i];
  }
  return cell;
}

bool Shape::NextCell(Cell* cell) const {
  DDC_DCHECK(cell != nullptr && cell->size() == extents_.size());
  for (int i = static_cast<int>(extents_.size()) - 1; i >= 0; --i) {
    size_t ui = static_cast<size_t>(i);
    if (++(*cell)[ui] < extents_[ui]) return true;
    (*cell)[ui] = 0;
  }
  return false;
}

std::string Shape::ToString() const {
  return "shape" + CellToString(extents_);
}

}  // namespace ddc
