// Operation counters used to reproduce the paper's cost analyses with
// measured numbers (Table 1, Sections 3.2 and 4.3).
//
// Counters are machine-independent: they count stored values touched, not
// nanoseconds, so measured results can be compared directly against the
// closed-form cost functions in cost_model.h.

#ifndef DDC_COMMON_OP_COUNTER_H_
#define DDC_COMMON_OP_COUNTER_H_

#include <cstdint>

namespace ddc {

struct OpCounters {
  // Stored values read while answering queries.
  int64_t values_read = 0;
  // Stored values written (created or modified) while applying updates.
  int64_t values_written = 0;
  // Tree nodes (or blocks) visited.
  int64_t nodes_visited = 0;

  void Reset() { *this = OpCounters(); }

  OpCounters operator-(const OpCounters& other) const {
    OpCounters out;
    out.values_read = values_read - other.values_read;
    out.values_written = values_written - other.values_written;
    out.nodes_visited = nodes_visited - other.nodes_visited;
    return out;
  }

  int64_t total_touched() const { return values_read + values_written; }
};

}  // namespace ddc

#endif  // DDC_COMMON_OP_COUNTER_H_
