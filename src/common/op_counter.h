// Operation counters used to reproduce the paper's cost analyses with
// measured numbers (Table 1, Sections 3.2 and 4.3).
//
// Counters are machine-independent: they count stored values touched, not
// nanoseconds, so measured results can be compared directly against the
// closed-form cost functions in cost_model.h.

#ifndef DDC_COMMON_OP_COUNTER_H_
#define DDC_COMMON_OP_COUNTER_H_

#include <atomic>
#include <cstdint>

namespace ddc {

// NOTE on thread-safety and the metrics registry: OpCounters is plain
// mutable state updated by const query paths, so it is safe only while the
// owning structure is accessed from a single thread (or under an exclusive
// lock); the concurrent facades construct their wrapped cubes with
// `enable_counters = false`. That used to mean per-value costs were simply
// lost under the facades. DdcCore now *additionally* routes every count
// into the process-wide obs::MetricsRegistry (relaxed-atomic counters
// ddc.values_read / ddc.values_written / ddc.nodes_visited, safe under
// shared locks), so OpCounters is a thin per-cube view for the paper's
// machine-independent cost analyses, while the registry carries the same
// accounting process-wide — including everything the concurrent facades do.
struct OpCounters {
  // Stored values read while answering queries.
  int64_t values_read = 0;
  // Stored values written (created or modified) while applying updates.
  int64_t values_written = 0;
  // Tree nodes (or blocks) visited.
  int64_t nodes_visited = 0;

  void Reset() { *this = OpCounters(); }

  OpCounters operator-(const OpCounters& other) const {
    OpCounters out;
    out.values_read = values_read - other.values_read;
    out.values_written = values_written - other.values_written;
    out.nodes_visited = nodes_visited - other.nodes_visited;
    return out;
  }

  int64_t total_touched() const { return values_read + values_written; }
};

// Thread-safe operation statistics for the concurrent facades. Unlike
// OpCounters these count whole operations (not stored values touched), so
// they stay meaningful when many threads mutate them concurrently; every
// field is an independent relaxed atomic — totals are exact once the
// structure is quiesced, and monotone lower bounds while it is running.
// Like OpCounters, this is a thin per-instance view: the facades mirror
// every event into the registry's sharded.* counters, so `ddctool stats`
// and the renderers see one unified account (see src/obs/metrics.h).
struct ConcurrentOpStats {
  std::atomic<int64_t> point_writes{0};   // Add/Set calls applied.
  std::atomic<int64_t> batches{0};        // ApplyBatch calls.
  std::atomic<int64_t> batched_ops{0};    // Ops applied through ApplyBatch.
  std::atomic<int64_t> point_reads{0};    // Get calls.
  std::atomic<int64_t> range_queries{0};  // RangeSum/TotalSum calls.
  // Requests enqueued into shard owner mailboxes (shared-nothing executor).
  std::atomic<int64_t> mailbox_messages{0};
  // Submissions that found a full mailbox lane and had to yield-retry
  // (structurally zero under the synchronous protocol).
  std::atomic<int64_t> mailbox_stalls{0};
  // Growth/shrink re-rootings observed via the shard growth hooks.
  std::atomic<int64_t> reroots{0};

  // Plain-value copy for printing (taken at quiescence).
  struct Snapshot {
    int64_t point_writes, batches, batched_ops, point_reads, range_queries,
        mailbox_messages, mailbox_stalls, reroots;
  };
  Snapshot Read() const {
    return {point_writes.load(std::memory_order_relaxed),
            batches.load(std::memory_order_relaxed),
            batched_ops.load(std::memory_order_relaxed),
            point_reads.load(std::memory_order_relaxed),
            range_queries.load(std::memory_order_relaxed),
            mailbox_messages.load(std::memory_order_relaxed),
            mailbox_stalls.load(std::memory_order_relaxed),
            reroots.load(std::memory_order_relaxed)};
  }
};

}  // namespace ddc

#endif  // DDC_COMMON_OP_COUNTER_H_
