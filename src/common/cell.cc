#include "common/cell.h"

#include <algorithm>
#include <cstdio>

#include "common/check.h"

namespace ddc {

Cell UniformCell(int dims, Coord value) {
  return Cell(static_cast<size_t>(dims), value);
}

bool DominatedBy(const Cell& a, const Cell& b) {
  DDC_DCHECK(a.size() == b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] > b[i]) return false;
  }
  return true;
}

bool StrictlyDominatedBy(const Cell& a, const Cell& b) {
  DDC_DCHECK(a.size() == b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] >= b[i]) return false;
  }
  return true;
}

Cell CellMin(const Cell& a, const Cell& b) {
  DDC_DCHECK(a.size() == b.size());
  Cell out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = std::min(a[i], b[i]);
  return out;
}

Cell CellMax(const Cell& a, const Cell& b) {
  DDC_DCHECK(a.size() == b.size());
  Cell out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = std::max(a[i], b[i]);
  return out;
}

Cell CellAdd(const Cell& a, const Cell& b) {
  DDC_DCHECK(a.size() == b.size());
  Cell out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Cell CellSub(const Cell& a, const Cell& b) {
  DDC_DCHECK(a.size() == b.size());
  Cell out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

std::string CellToString(const Cell& cell) {
  std::string out = "(";
  for (size_t i = 0; i < cell.size(); ++i) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(cell[i]));
    if (i > 0) out += ", ";
    out += buf;
  }
  out += ")";
  return out;
}

}  // namespace ddc
