// Synthetic workload generators.
//
// The paper motivates the Dynamic Data Cube with three workload classes
// (Sections 1 and 5): dense business cubes (uniform updates), sparse and
// clustered scientific data (point sources: stars, EOSDIS methane readings),
// and skewed commercial activity. These generators reproduce those
// statistical shapes so that every experiment can run on a laptop without
// the original proprietary traces.

#ifndef DDC_COMMON_WORKLOAD_H_
#define DDC_COMMON_WORKLOAD_H_

#include <cstdint>
#include <random>
#include <vector>

#include "common/cell.h"
#include "common/md_array.h"
#include "common/mutation.h"
#include "common/range.h"
#include "common/shape.h"

namespace ddc {

// Uniform-and-skewed generator over a fixed domain.
class WorkloadGenerator {
 public:
  WorkloadGenerator(Shape domain, uint64_t seed);

  const Shape& domain() const { return domain_; }

  // A cell uniformly distributed over the domain.
  Cell UniformCell();

  // A cell whose per-dimension index follows a Zipf-like distribution with
  // parameter `theta` (theta = 0 is uniform; larger values skew towards low
  // indices, modelling hot regions).
  Cell ZipfCell(double theta);

  // A uniformly random non-empty closed box inside the domain.
  Box UniformBox();

  // A random box whose side in every dimension is ~`side_fraction` of the
  // extent (clamped to at least one cell), placed uniformly.
  Box BoxWithSideFraction(double side_fraction);

  // A value uniform in [lo, hi].
  int64_t Value(int64_t lo, int64_t hi);

  // `count` uniform updates with values in [value_lo, value_hi].
  std::vector<UpdateOp> UniformUpdates(int64_t count, int64_t value_lo,
                                       int64_t value_hi);

  // A dense random array over the domain with values in [value_lo, value_hi].
  MdArray<int64_t> RandomDenseArray(int64_t value_lo, int64_t value_hi);

  std::mt19937_64& rng() { return rng_; }

 private:
  Shape domain_;
  std::mt19937_64 rng_;
};

// Clustered point-source generator: `num_clusters` Gaussian clusters with
// standard deviation `sigma_fraction * extent`, matching the paper's
// geographically clustered examples. Cells are clamped to the domain.
class ClusteredGenerator {
 public:
  ClusteredGenerator(Shape domain, int num_clusters, double sigma_fraction,
                     uint64_t seed);

  // A cell drawn from a random cluster.
  Cell NextCell();

  // Cluster centers chosen at construction time.
  const std::vector<Cell>& centers() const { return centers_; }

 private:
  Shape domain_;
  double sigma_fraction_;
  std::vector<Cell> centers_;
  std::mt19937_64 rng_;
};

}  // namespace ddc

#endif  // DDC_COMMON_WORKLOAD_H_
