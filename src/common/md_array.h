// MdArray: a dense row-major d-dimensional array.
//
// This is the representation of array A in Section 2 of the paper, and the
// backing store for the Prefix Sum array P, the Relative Prefix Sum tables,
// and the Basic DDC overlay boxes.

#ifndef DDC_COMMON_MD_ARRAY_H_
#define DDC_COMMON_MD_ARRAY_H_

#include <cstdint>
#include <vector>

#include "common/cell.h"
#include "common/check.h"
#include "common/shape.h"

namespace ddc {

template <typename T>
class MdArray {
 public:
  MdArray() = default;
  explicit MdArray(Shape shape, T initial = T())
      : shape_(std::move(shape)),
        data_(static_cast<size_t>(shape_.num_cells()), initial) {}

  const Shape& shape() const { return shape_; }
  int dims() const { return shape_.dims(); }
  int64_t size() const { return static_cast<int64_t>(data_.size()); }

  T& at(const Cell& cell) {
    return data_[static_cast<size_t>(shape_.LinearIndex(cell))];
  }
  const T& at(const Cell& cell) const {
    return data_[static_cast<size_t>(shape_.LinearIndex(cell))];
  }

  T& at_linear(int64_t index) {
    DDC_DCHECK(index >= 0 && index < size());
    return data_[static_cast<size_t>(index)];
  }
  const T& at_linear(int64_t index) const {
    DDC_DCHECK(index >= 0 && index < size());
    return data_[static_cast<size_t>(index)];
  }

  void Fill(T value) { data_.assign(data_.size(), value); }

  // Raw row-major storage; the innermost dimension is contiguous. Block
  // kernels (leaf-prefix sums) run directly over this.
  const T* data() const { return data_.data(); }

  // Invokes fn(cell, value&) for every cell in row-major order.
  template <typename Fn>
  void ForEach(Fn&& fn) {
    if (data_.empty()) return;
    Cell cell(static_cast<size_t>(shape_.dims()), 0);
    int64_t index = 0;
    do {
      fn(cell, data_[static_cast<size_t>(index)]);
      ++index;
    } while (shape_.NextCell(&cell));
  }

  template <typename Fn>
  void ForEach(Fn&& fn) const {
    if (data_.empty()) return;
    Cell cell(static_cast<size_t>(shape_.dims()), 0);
    int64_t index = 0;
    do {
      fn(cell, data_[static_cast<size_t>(index)]);
      ++index;
    } while (shape_.NextCell(&cell));
  }

 private:
  Shape shape_;
  std::vector<T> data_;
};

}  // namespace ddc

#endif  // DDC_COMMON_MD_ARRAY_H_
