// Box: a closed axis-aligned hyper-rectangle of cells, and the
// inclusion-exclusion identity of Figure 4 in the paper:
//
//   Sum(Area_E) = Sum(Area_A) - Sum(Area_B) - Sum(Area_C) + Sum(Area_D)
//
// generalized to d dimensions: the sum over [lo..hi] equals the signed sum of
// 2^d prefix sums, one per corner subset, with sign (-1)^|subset|.

#ifndef DDC_COMMON_RANGE_H_
#define DDC_COMMON_RANGE_H_

#include <cstdint>
#include <functional>
#include <string>

#include "common/cell.h"

namespace ddc {

// A closed box [lo, hi] (both corners inclusive, matching the paper's range
// query notation A[lo]:A[hi]). A box with lo[i] > hi[i] in any dimension is
// empty.
struct Box {
  Cell lo;
  Cell hi;

  int dims() const { return static_cast<int>(lo.size()); }
  bool IsEmpty() const;
  // Number of cells in the box (0 if empty).
  int64_t NumCells() const;
  bool Contains(const Cell& cell) const;
  std::string ToString() const;
};

// Returns the box clipped to `bounds` (may be empty).
Box IntersectBoxes(const Box& a, const Box& b);

// True iff the closed boxes share at least one cell. Allocation-free (unlike
// testing IntersectBoxes(a, b).IsEmpty(), which materializes the corner
// cells) — this is the predicate the query-result cache runs once per cached
// entry per mutation batch, so it must stay a plain coordinate scan. Empty
// operands (inverted bounds) overlap nothing.
bool BoxesOverlap(const Box& a, const Box& b);

// Invokes `fn(cell)` for every cell of the closed box in row-major order
// (last dimension fastest). An empty box invokes nothing. Cost is
// Theta(NumCells()) — callers on the hot write path should prefer the
// signed-corner decomposition (DESIGN.md §12) over cell-by-cell expansion.
void ForEachCellInBox(const Box& box,
                      const std::function<void(const Cell&)>& fn);

// Evaluates SUM over the closed box [lo, hi] given a prefix-sum oracle.
//
// `prefix(c)` must return SUM(A[anchor .. c]), where `anchor` is the lowest
// cell of the structure's domain; for corner cells with any coordinate below
// `anchor` the term is zero and `prefix` is not invoked for it. This is the
// generalized Figure 4 computation and costs at most 2^d oracle calls.
int64_t RangeSumFromPrefix(
    const Box& box, const Cell& anchor,
    const std::function<int64_t(const Cell&)>& prefix);

}  // namespace ddc

#endif  // DDC_COMMON_RANGE_H_
