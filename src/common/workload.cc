#include "common/workload.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"

namespace ddc {

WorkloadGenerator::WorkloadGenerator(Shape domain, uint64_t seed)
    : domain_(std::move(domain)), rng_(seed) {}

Cell WorkloadGenerator::UniformCell() {
  Cell cell(static_cast<size_t>(domain_.dims()));
  for (int i = 0; i < domain_.dims(); ++i) {
    std::uniform_int_distribution<Coord> dist(0, domain_.extent(i) - 1);
    cell[static_cast<size_t>(i)] = dist(rng_);
  }
  return cell;
}

Cell WorkloadGenerator::ZipfCell(double theta) {
  DDC_CHECK(theta >= 0.0);
  Cell cell(static_cast<size_t>(domain_.dims()));
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  for (int i = 0; i < domain_.dims(); ++i) {
    const double extent = static_cast<double>(domain_.extent(i));
    // Inverse-power transform of a uniform variate: u^(1+theta) concentrates
    // mass near zero as theta grows while staying uniform at theta == 0.
    const double u = unit(rng_);
    const double skewed = std::pow(u, 1.0 + theta);
    Coord index = static_cast<Coord>(skewed * extent);
    cell[static_cast<size_t>(i)] = std::min<Coord>(index, domain_.extent(i) - 1);
  }
  return cell;
}

Box WorkloadGenerator::UniformBox() {
  Cell a = UniformCell();
  Cell b = UniformCell();
  return Box{CellMin(a, b), CellMax(a, b)};
}

Box WorkloadGenerator::BoxWithSideFraction(double side_fraction) {
  DDC_CHECK(side_fraction > 0.0 && side_fraction <= 1.0);
  Cell lo(static_cast<size_t>(domain_.dims()));
  Cell hi(static_cast<size_t>(domain_.dims()));
  for (int i = 0; i < domain_.dims(); ++i) {
    const Coord extent = domain_.extent(i);
    Coord side = std::max<Coord>(
        1, static_cast<Coord>(std::llround(side_fraction * extent)));
    side = std::min(side, extent);
    std::uniform_int_distribution<Coord> dist(0, extent - side);
    const Coord start = dist(rng_);
    lo[static_cast<size_t>(i)] = start;
    hi[static_cast<size_t>(i)] = start + side - 1;
  }
  return Box{lo, hi};
}

int64_t WorkloadGenerator::Value(int64_t lo, int64_t hi) {
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(rng_);
}

std::vector<UpdateOp> WorkloadGenerator::UniformUpdates(int64_t count,
                                                        int64_t value_lo,
                                                        int64_t value_hi) {
  std::vector<UpdateOp> updates;
  updates.reserve(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    updates.push_back(UpdateOp{UniformCell(), Value(value_lo, value_hi)});
  }
  return updates;
}

MdArray<int64_t> WorkloadGenerator::RandomDenseArray(int64_t value_lo,
                                                     int64_t value_hi) {
  MdArray<int64_t> array(domain_);
  std::uniform_int_distribution<int64_t> dist(value_lo, value_hi);
  array.ForEach([&](const Cell&, int64_t& v) { v = dist(rng_); });
  return array;
}

ClusteredGenerator::ClusteredGenerator(Shape domain, int num_clusters,
                                       double sigma_fraction, uint64_t seed)
    : domain_(std::move(domain)),
      sigma_fraction_(sigma_fraction),
      rng_(seed) {
  DDC_CHECK(num_clusters >= 1);
  DDC_CHECK(sigma_fraction_ > 0.0);
  WorkloadGenerator center_gen(domain_, seed ^ 0x9e3779b97f4a7c15ull);
  centers_.reserve(static_cast<size_t>(num_clusters));
  for (int i = 0; i < num_clusters; ++i) {
    centers_.push_back(center_gen.UniformCell());
  }
}

Cell ClusteredGenerator::NextCell() {
  std::uniform_int_distribution<size_t> pick(0, centers_.size() - 1);
  const Cell& center = centers_[pick(rng_)];
  Cell cell(static_cast<size_t>(domain_.dims()));
  for (int i = 0; i < domain_.dims(); ++i) {
    const double extent = static_cast<double>(domain_.extent(i));
    std::normal_distribution<double> gauss(
        static_cast<double>(center[static_cast<size_t>(i)]),
        sigma_fraction_ * extent);
    Coord index = static_cast<Coord>(std::llround(gauss(rng_)));
    index = std::clamp<Coord>(index, 0, domain_.extent(i) - 1);
    cell[static_cast<size_t>(i)] = index;
  }
  return cell;
}

}  // namespace ddc
