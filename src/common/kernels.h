// Hot-loop kernels for the cube's descent and accumulation paths, plus the
// scalar/optimized dispatch switch.
//
// Every query and update in the Dynamic Data Cube bottoms out in two loop
// shapes: summing a prefix of a node's sum array (B_c-tree descents, the
// Figure 10 classify step) and summing a contiguous block of cells (the
// Section 4.4 space-optimized raw leaves, Fenwick bulk build, grouped
// subtotal accumulation). On modern hardware both are dominated by branch
// mispredicts and per-element loop overhead, not by the adds themselves
// (Pibiri–Venturini, arXiv 2006.14552). This header provides:
//
//   * Scalar reference kernels (`SumScalar`, `MaskedPrefixSumScalar`) —
//     deliberately the naive one-element-per-iteration loops, pinned
//     unvectorized so they stay an honest pre-optimization baseline for
//     bench_kernels and the bit-exactness contract for the differential
//     tests in kernel_layout_test.
//   * Optimized kernels (`Sum`, `MaskedPrefixSum`) — branchless, multi-
//     accumulator unrolled; compiled as AVX2 intrinsics when the build
//     opts in with -DDDC_NATIVE=ON on an AVX2 host, portable otherwise.
//     Integer addition is associative, so every variant returns bit-exact
//     identical results (wrap-around included) — the dispatch is purely a
//     performance choice, which the differential tests verify.
//   * A process-wide runtime switch (`ForceScalar` / `ScopedForceScalar`)
//     that routes the structure-level fast paths (B_c-tree descents, raw
//     leaf prefix sums) back to their scalar reference implementations.
//     Benches use it to measure the optimized paths against the pre-PR
//     baseline inside one binary; tests use it for differentials.
//
// The switch is read at most once per high-level operation (never per
// element); it is a relaxed atomic so tests can flip it without fences.

#ifndef DDC_COMMON_KERNELS_H_
#define DDC_COMMON_KERNELS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

#if defined(DDC_NATIVE_ENABLED) && defined(__AVX2__)
#include <immintrin.h>
#define DDC_KERNELS_AVX2 1
#endif

// Pins the scalar reference loops to their written form: without this, an
// aggressive build (-O3 / -march=native) would auto-vectorize the baseline
// and the bench would measure compiler flags instead of kernel structure.
#if defined(__GNUC__) && !defined(__clang__)
#define DDC_KERNEL_NO_VECTORIZE \
  __attribute__((optimize("no-tree-vectorize,no-unroll-loops")))
#else
#define DDC_KERNEL_NO_VECTORIZE
#endif

namespace ddc {
namespace kernels {

namespace internal {
inline std::atomic<bool>& ForceScalarFlag() {
  static std::atomic<bool> flag{false};
  return flag;
}
}  // namespace internal

// True when structure-level fast paths must fall back to their scalar
// reference implementations (the semantic contract).
inline bool UseScalar() {
  return internal::ForceScalarFlag().load(std::memory_order_relaxed);
}

inline void ForceScalar(bool on) {
  internal::ForceScalarFlag().store(on, std::memory_order_relaxed);
}

// RAII scope for tests and benches; restores the previous mode on exit.
class ScopedForceScalar {
 public:
  explicit ScopedForceScalar(bool on) : prev_(UseScalar()) { ForceScalar(on); }
  ~ScopedForceScalar() { ForceScalar(prev_); }
  ScopedForceScalar(const ScopedForceScalar&) = delete;
  ScopedForceScalar& operator=(const ScopedForceScalar&) = delete;

 private:
  bool prev_;
};

// Issues a read prefetch for the cache line at `p` (no-op when the compiler
// lacks the builtin, or for null). The batched descents prefetch the next
// group's level-L+1 node while the current group's level-L work runs.
inline void PrefetchRead(const void* p) {
  if (p == nullptr) return;
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
#endif
}

// ---------------------------------------------------------------------------
// Scalar reference kernels.

// Reference block sum: one element per iteration, no unrolling.
DDC_KERNEL_NO_VECTORIZE inline int64_t SumScalar(const int64_t* v, size_t n) {
  int64_t sum = 0;
  for (size_t i = 0; i < n; ++i) sum += v[i];
  return sum;
}

// Reference masked prefix sum: the pre-optimization per-entry compare loop —
// sums v[0 .. count) out of a node array of `fanout` entries.
DDC_KERNEL_NO_VECTORIZE inline int64_t MaskedPrefixSumScalar(
    const int64_t* v, size_t fanout, size_t count) {
  (void)fanout;
  int64_t sum = 0;
  for (size_t i = 0; i < count; ++i) sum += v[i];
  return sum;
}

// ---------------------------------------------------------------------------
// Optimized kernels.

#ifdef DDC_KERNELS_AVX2

// AVX2 block sum: 4 lanes x 2 accumulators, scalar tail.
inline int64_t Sum(const int64_t* v, size_t n) {
  __m256i acc0 = _mm256_setzero_si256();
  __m256i acc1 = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_add_epi64(
        acc0, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i)));
    acc1 = _mm256_add_epi64(
        acc1, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i + 4)));
  }
  __m256i acc = _mm256_add_epi64(acc0, acc1);
  __m128i lo = _mm256_castsi256_si128(acc);
  __m128i hi = _mm256_extracti128_si256(acc, 1);
  __m128i pair = _mm_add_epi64(lo, hi);
  int64_t sum = _mm_cvtsi128_si64(pair) + _mm_extract_epi64(pair, 1);
  for (; i < n; ++i) sum += v[i];
  return sum;
}

// AVX2 masked prefix sum over a node of exactly 8 entries (the cache-line
// node layout): compare a lane-index vector against `count`, mask, add.
// Branchless — reads the whole line, which is already resident.
inline int64_t MaskedPrefixSum8(const int64_t* v, size_t count) {
  const __m256i idx_lo = _mm256_setr_epi64x(0, 1, 2, 3);
  const __m256i idx_hi = _mm256_setr_epi64x(4, 5, 6, 7);
  const __m256i limit = _mm256_set1_epi64x(static_cast<int64_t>(count));
  const __m256i keep_lo = _mm256_cmpgt_epi64(limit, idx_lo);
  const __m256i keep_hi = _mm256_cmpgt_epi64(limit, idx_hi);
  __m256i acc = _mm256_add_epi64(
      _mm256_and_si256(
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v)), keep_lo),
      _mm256_and_si256(
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + 4)),
          keep_hi));
  __m128i lo = _mm256_castsi256_si128(acc);
  __m128i hi = _mm256_extracti128_si256(acc, 1);
  __m128i pair = _mm_add_epi64(lo, hi);
  return _mm_cvtsi128_si64(pair) + _mm_extract_epi64(pair, 1);
}

#else  // !DDC_KERNELS_AVX2

// Portable block sum: 4 independent accumulators so the adds pipeline (and
// auto-vectorize under -O3); one pass, scalar tail.
inline int64_t Sum(const int64_t* v, size_t n) {
  int64_t a0 = 0, a1 = 0, a2 = 0, a3 = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    a0 += v[i];
    a1 += v[i + 1];
    a2 += v[i + 2];
    a3 += v[i + 3];
  }
  int64_t sum = (a0 + a1) + (a2 + a3);
  for (; i < n; ++i) sum += v[i];
  return sum;
}

// Portable branchless masked prefix sum over 8 entries: predication by
// arithmetic mask instead of a data-dependent loop bound.
inline int64_t MaskedPrefixSum8(const int64_t* v, size_t count) {
  const int64_t c = static_cast<int64_t>(count);
  int64_t sum = 0;
  for (int64_t i = 0; i < 8; ++i) {
    sum += v[i] & -static_cast<int64_t>(i < c);
  }
  return sum;
}

#endif  // DDC_KERNELS_AVX2

// Branchless masked prefix sum for a general fanout: sums v[0 .. count) out
// of `fanout` stored entries. The fanout-8 shape (one cache line of sums) is
// the tuned default and gets the specialized kernel.
inline int64_t MaskedPrefixSum(const int64_t* v, size_t fanout, size_t count) {
  if (fanout == 8) return MaskedPrefixSum8(v, count);
  if (fanout <= 16) {
    // Small node: predicated whole-node scan — the entries share one or two
    // cache lines, so reading them all is cheaper than mispredicting.
    const int64_t c = static_cast<int64_t>(count);
    int64_t sum = 0;
    for (int64_t i = 0; i < static_cast<int64_t>(fanout); ++i) {
      sum += v[i] & -static_cast<int64_t>(i < c);
    }
    return sum;
  }
  return Sum(v, count);
}

}  // namespace kernels
}  // namespace ddc

#endif  // DDC_COMMON_KERNELS_H_
