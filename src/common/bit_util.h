// Small integer helpers shared across modules.

#ifndef DDC_COMMON_BIT_UTIL_H_
#define DDC_COMMON_BIT_UTIL_H_

#include <bit>
#include <cstdint>

#include "common/check.h"

namespace ddc {

inline bool IsPowerOfTwo(int64_t v) {
  return v > 0 && (v & (v - 1)) == 0;
}

// floor(log2(v)); v must be positive.
inline int FloorLog2(int64_t v) {
  DDC_DCHECK(v > 0);
  return 63 - std::countl_zero(static_cast<uint64_t>(v));
}

// Smallest power of two >= v; v must be positive.
inline int64_t CeilPowerOfTwo(int64_t v) {
  DDC_DCHECK(v > 0);
  return static_cast<int64_t>(std::bit_ceil(static_cast<uint64_t>(v)));
}

// Integer exponentiation; asserts against int64 overflow in debug builds.
inline int64_t IPow(int64_t base, int exp) {
  DDC_DCHECK(exp >= 0);
  int64_t result = 1;
  for (int i = 0; i < exp; ++i) result *= base;
  return result;
}

}  // namespace ddc

#endif  // DDC_COMMON_BIT_UTIL_H_
