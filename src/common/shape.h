// Shape: the extents of a d-dimensional array, with row-major linearization.

#ifndef DDC_COMMON_SHAPE_H_
#define DDC_COMMON_SHAPE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/cell.h"

namespace ddc {

// Describes the extents of a d-dimensional box of cells anchored at the
// origin, and converts between cells and row-major linear offsets.
class Shape {
 public:
  Shape() = default;

  // `extents[i]` is the number of distinct indices in dimension i; every
  // extent must be >= 1.
  explicit Shape(std::vector<Coord> extents);

  // Cube shape: `dims` dimensions, every extent equal to `side`.
  static Shape Cube(int dims, Coord side);

  int dims() const { return static_cast<int>(extents_.size()); }
  Coord extent(int dim) const { return extents_[static_cast<size_t>(dim)]; }
  const std::vector<Coord>& extents() const { return extents_; }

  // Total number of cells (product of extents).
  int64_t num_cells() const { return num_cells_; }

  // Returns true when 0 <= cell[i] < extent(i) for every dimension.
  bool Contains(const Cell& cell) const;

  // Row-major linear offset of `cell`; `cell` must be contained.
  int64_t LinearIndex(const Cell& cell) const;

  // Inverse of LinearIndex.
  Cell CellAt(int64_t linear_index) const;

  // Advances `cell` to the row-major successor within this shape. Returns
  // false (leaving `cell` at all-zeros) after the last cell. Start iteration
  // from the all-zero cell; the canonical loop is:
  //   Cell c(shape.dims(), 0);
  //   do { ... } while (shape.NextCell(&c));
  bool NextCell(Cell* cell) const;

  std::string ToString() const;

  friend bool operator==(const Shape& a, const Shape& b) {
    return a.extents_ == b.extents_;
  }

 private:
  std::vector<Coord> extents_;
  std::vector<int64_t> strides_;  // row-major strides, strides_[d-1] == 1
  int64_t num_cells_ = 1;
};

}  // namespace ddc

#endif  // DDC_COMMON_SHAPE_H_
