// Cell: a point in the d-dimensional integer index space of a data cube.
//
// A Cell is simply a vector of signed 64-bit coordinates. Coordinates are
// signed because the Dynamic Data Cube supports growth in any direction
// (Section 5 of the paper): after growth the domain anchor may be negative.
// The helpers in this header implement the dominance tests used throughout
// the overlay-box algorithms (Figure 10 of the paper).

#ifndef DDC_COMMON_CELL_H_
#define DDC_COMMON_CELL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ddc {

// One coordinate of a cell.
using Coord = int64_t;

// A point in index space. The vector length is the cube dimensionality d.
// Guaranteed to stay a std::vector<Coord>; client code may rely on vector
// semantics (size(), operator[], iteration).
using Cell = std::vector<Coord>;

// Returns a cell of `dims` coordinates, all equal to `value`.
Cell UniformCell(int dims, Coord value);

// Returns true when a[i] <= b[i] for every dimension ("a dominates from
// below"), i.e. b lies in the closed dominance region of a.
bool DominatedBy(const Cell& a, const Cell& b);

// Returns true when a[i] < b[i] for every dimension.
bool StrictlyDominatedBy(const Cell& a, const Cell& b);

// Componentwise minimum / maximum. Both cells must have equal arity.
Cell CellMin(const Cell& a, const Cell& b);
Cell CellMax(const Cell& a, const Cell& b);

// Componentwise sum / difference.
Cell CellAdd(const Cell& a, const Cell& b);
Cell CellSub(const Cell& a, const Cell& b);

// Renders "(c0, c1, ..., cd-1)" for diagnostics and test failure messages.
std::string CellToString(const Cell& cell);

// FNV-1a over the coordinate bytes; the Hash argument for unordered
// containers keyed by Cell (corner dedup maps, batch coalescing).
struct CellHash {
  size_t operator()(const Cell& cell) const {
    uint64_t h = 1469598103934665603ull;  // FNV offset basis.
    for (const Coord c : cell) {
      h ^= static_cast<uint64_t>(c);
      h *= 1099511628211ull;  // FNV prime.
    }
    return static_cast<size_t>(h);
  }
};

}  // namespace ddc

#endif  // DDC_COMMON_CELL_H_
