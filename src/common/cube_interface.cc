#include "common/cube_interface.h"

namespace ddc {

int64_t CubeInterface::RangeSum(const Box& box) const {
  const Box clipped = IntersectBoxes(box, Box{DomainLo(), DomainHi()});
  if (clipped.IsEmpty()) return 0;
  return RangeSumFromPrefix(clipped, DomainLo(),
                            [this](const Cell& c) { return PrefixSum(c); });
}

}  // namespace ddc
