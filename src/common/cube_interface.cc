#include "common/cube_interface.h"

#include "common/check.h"

namespace ddc {

int64_t CubeInterface::RangeSum(const Box& box) const {
  const Box clipped = IntersectBoxes(box, Box{DomainLo(), DomainHi()});
  if (clipped.IsEmpty()) return 0;
  return RangeSumFromPrefix(clipped, DomainLo(),
                            [this](const Cell& c) { return PrefixSum(c); });
}

void CubeInterface::RangeSumBatch(std::span<const Box> ranges,
                                  std::span<int64_t> out) const {
  DDC_CHECK(ranges.size() == out.size());
  for (size_t i = 0; i < ranges.size(); ++i) {
    out[i] = RangeSum(ranges[i]);
  }
}

bool CubeInterface::ApplyBatch(std::span<const Mutation> batch) {
  if (!BatchWellFormed(batch, dims())) return false;
  for (const Mutation& m : batch) {
    if (m.kind == MutationKind::kSet) {
      Set(m.cell, m.delta);
    } else {
      Add(m.cell, m.delta);
    }
  }
  return true;
}

}  // namespace ddc
