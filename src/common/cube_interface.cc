#include "common/cube_interface.h"

#include "common/check.h"

namespace ddc {

int64_t CubeInterface::RangeSum(const Box& box) const {
  const Box clipped = IntersectBoxes(box, Box{DomainLo(), DomainHi()});
  if (clipped.IsEmpty()) return 0;
  return RangeSumFromPrefix(clipped, DomainLo(),
                            [this](const Cell& c) { return PrefixSum(c); });
}

void CubeInterface::RangeSumBatch(std::span<const Box> ranges,
                                  std::span<int64_t> out) const {
  DDC_CHECK(ranges.size() == out.size());
  for (size_t i = 0; i < ranges.size(); ++i) {
    out[i] = RangeSum(ranges[i]);
  }
}

void CubeInterface::ApplyBatch(std::span<const Mutation> batch) {
  CheckBatchWellFormed(batch);
  for (const Mutation& m : batch) {
    if (m.kind == MutationKind::kSet) {
      Set(m.cell, m.delta);
    } else {
      Add(m.cell, m.delta);
    }
  }
}

void CubeInterface::CheckBatchWellFormed(
    std::span<const Mutation> batch) const {
  const size_t d = static_cast<size_t>(dims());
  for (const Mutation& m : batch) {
    DDC_CHECK(m.cell.size() == d);
  }
}

}  // namespace ddc
