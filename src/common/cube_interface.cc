#include "common/cube_interface.h"

#include "common/check.h"

namespace ddc {

int64_t CubeInterface::RangeSum(const Box& box) const {
  const Box clipped = IntersectBoxes(box, Box{DomainLo(), DomainHi()});
  if (clipped.IsEmpty()) return 0;
  return RangeSumFromPrefix(clipped, DomainLo(),
                            [this](const Cell& c) { return PrefixSum(c); });
}

void CubeInterface::RangeSumBatch(std::span<const Box> ranges,
                                  std::span<int64_t> out) const {
  DDC_CHECK(ranges.size() == out.size());
  for (size_t i = 0; i < ranges.size(); ++i) {
    out[i] = RangeSum(ranges[i]);
  }
}

void CubeInterface::RangeAdd(const Box& box, int64_t delta) {
  const Box clipped = IntersectBoxes(box, Box{DomainLo(), DomainHi()});
  if (clipped.IsEmpty() || delta == 0) return;
  ForEachCellInBox(clipped, [this, delta](const Cell& c) { Add(c, delta); });
}

void CubeInterface::RangeSet(const Box& box, int64_t value) {
  const Box clipped = IntersectBoxes(box, Box{DomainLo(), DomainHi()});
  if (clipped.IsEmpty()) return;
  ForEachCellInBox(clipped, [this, value](const Cell& c) { Set(c, value); });
}

bool CubeInterface::ApplyBatch(std::span<const Mutation> batch) {
  if (!BatchWellFormed(batch, dims())) return false;
  for (const Mutation& m : batch) {
    switch (m.kind) {
      case MutationKind::kAdd:
        Add(m.cell, m.delta);
        break;
      case MutationKind::kSet:
        Set(m.cell, m.delta);
        break;
      case MutationKind::kRangeAdd:
        RangeAdd(m.box(), m.delta);
        break;
      case MutationKind::kRangeSet:
        RangeSet(m.box(), m.delta);
        break;
    }
  }
  return true;
}

}  // namespace ddc
