#include "common/range.h"

#include <algorithm>
#include <bit>

#include "common/check.h"

namespace ddc {

bool Box::IsEmpty() const {
  DDC_DCHECK(lo.size() == hi.size());
  for (size_t i = 0; i < lo.size(); ++i) {
    if (lo[i] > hi[i]) return true;
  }
  return false;
}

int64_t Box::NumCells() const {
  if (IsEmpty()) return 0;
  int64_t cells = 1;
  for (size_t i = 0; i < lo.size(); ++i) cells *= hi[i] - lo[i] + 1;
  return cells;
}

bool Box::Contains(const Cell& cell) const {
  DDC_DCHECK(cell.size() == lo.size());
  for (size_t i = 0; i < lo.size(); ++i) {
    if (cell[i] < lo[i] || cell[i] > hi[i]) return false;
  }
  return true;
}

std::string Box::ToString() const {
  return "[" + CellToString(lo) + " .. " + CellToString(hi) + "]";
}

Box IntersectBoxes(const Box& a, const Box& b) {
  return Box{CellMax(a.lo, b.lo), CellMin(a.hi, b.hi)};
}

bool BoxesOverlap(const Box& a, const Box& b) {
  DDC_DCHECK(a.lo.size() == b.lo.size());
  for (size_t i = 0; i < a.lo.size(); ++i) {
    if (a.lo[i] > a.hi[i] || b.lo[i] > b.hi[i]) return false;
    if (a.hi[i] < b.lo[i] || b.hi[i] < a.lo[i]) return false;
  }
  return true;
}

void ForEachCellInBox(const Box& box,
                      const std::function<void(const Cell&)>& fn) {
  DDC_CHECK(box.lo.size() == box.hi.size());
  if (box.IsEmpty()) return;
  const size_t d = box.lo.size();
  Cell cell = box.lo;
  if (d == 0) {
    fn(cell);
    return;
  }
  while (true) {
    fn(cell);
    size_t i = d;
    while (i > 0) {
      --i;
      if (cell[i] < box.hi[i]) {
        ++cell[i];
        break;
      }
      cell[i] = box.lo[i];
      if (i == 0) return;
    }
  }
}

int64_t RangeSumFromPrefix(
    const Box& box, const Cell& anchor,
    const std::function<int64_t(const Cell&)>& prefix) {
  DDC_CHECK(box.lo.size() == box.hi.size());
  DDC_CHECK(anchor.size() == box.lo.size());
  if (box.IsEmpty()) return 0;

  const int d = box.dims();
  const uint32_t num_corners = 1u << d;
  int64_t total = 0;
  Cell corner(static_cast<size_t>(d));
  for (uint32_t mask = 0; mask < num_corners; ++mask) {
    // Bit i set: take lo[i]-1 in dimension i; clear: take hi[i].
    bool below_anchor = false;
    for (int i = 0; i < d; ++i) {
      size_t ui = static_cast<size_t>(i);
      if (mask & (1u << i)) {
        corner[ui] = box.lo[ui] - 1;
        if (corner[ui] < anchor[ui]) {
          below_anchor = true;
          break;
        }
      } else {
        corner[ui] = box.hi[ui];
      }
    }
    if (below_anchor) continue;  // Empty prefix region contributes zero.
    const int sign = (std::popcount(mask) % 2 == 0) ? 1 : -1;
    total += sign * prefix(corner);
  }
  return total;
}

}  // namespace ddc
