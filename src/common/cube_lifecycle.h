// CubeLifecycle: one subscription point for structural cube events.
//
// A Dynamic Data Cube re-roots — rebuilds its tree into a fresh arena —
// when it grows past its domain or shrinks to fit. Before this hub existed
// each observer (sharded shard accounting, WAL checkpoint scheduling, obs
// counters) wired its own bespoke callback into the cube. CubeLifecycle
// replaces those with a single multi-subscriber hook the owning cube fires
// after every re-root.
//
// Threading: the hub itself is NOT synchronized. Subscribe/Unsubscribe and
// Notify must be serialized by the owner — in practice all three happen on
// whatever thread exclusively mutates the cube (for ShardedCube that is the
// shard's owner thread, where exclusivity is structural; for lock-guarded
// cubes, the mutating thread under the write lock). Callbacks run inline on
// that thread and must not call back into the cube that is mid-re-root.

#ifndef DDC_COMMON_CUBE_LIFECYCLE_H_
#define DDC_COMMON_CUBE_LIFECYCLE_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace ddc {

// Why a cube rebuilt its tree.
enum class ReRootReason {
  kGrowth,  // EnsureContains doubled the domain to cover a new cell.
  kShrink,  // ShrinkToFit re-rooted into a tight (or empty) domain.
};

// One re-root, described by the side lengths before and after. The old
// tree's arena is retired wholesale once subscribers have been notified.
struct ReRootEvent {
  ReRootReason reason;
  int64_t old_side;
  int64_t new_side;
};

class CubeLifecycle {
 public:
  using Callback = std::function<void(const ReRootEvent&)>;

  // Registers `cb` and returns a token for Unsubscribe. Tokens are never
  // reused within one hub.
  uint64_t Subscribe(Callback cb) {
    const uint64_t token = next_token_++;
    subscribers_.push_back({token, std::move(cb)});
    return token;
  }

  // Removes the subscription `token`; ignores unknown tokens.
  void Unsubscribe(uint64_t token) {
    for (size_t i = 0; i < subscribers_.size(); ++i) {
      if (subscribers_[i].token == token) {
        subscribers_.erase(subscribers_.begin() +
                           static_cast<ptrdiff_t>(i));
        return;
      }
    }
  }

  // Invokes every subscriber in subscription order.
  void Notify(const ReRootEvent& event) const {
    for (const Subscriber& s : subscribers_) s.callback(event);
  }

  bool empty() const { return subscribers_.empty(); }

 private:
  struct Subscriber {
    uint64_t token;
    Callback callback;
  };
  std::vector<Subscriber> subscribers_;
  uint64_t next_token_ = 1;
};

}  // namespace ddc

#endif  // DDC_COMMON_CUBE_LIFECYCLE_H_
