// Bounded single-producer / single-consumer mailbox: the message channel of
// the shared-nothing sharded executor (concurrent/sharded_cube.h).
//
// This is a classic Lamport ring with the two standard refinements that
// matter on real hardware:
//
//   1. Cache-line padding. The producer index (`tail_`) and the consumer
//      index (`head_`) each live on their own 64-byte line, so a producer
//      publishing and a consumer draining never invalidate each other's
//      index line — the only coherence traffic on the fast path is the slot
//      itself plus one index line per side.
//   2. Cached peer indices. The producer keeps a private copy of the last
//      head it observed and only re-reads the shared `head_` when the ring
//      *looks* full against the cache (symmetrically for the consumer and
//      `tail_`). A producer therefore touches the consumer's index line once
//      per wrap-around in the common case, not once per push.
//
// Memory ordering: a push writes the slot, then publishes with a release
// store of `tail_`; the consumer acquires `tail_` before reading slots, so
// every slot read happens-after the write that filled it. Pops release
// `head_` after the slot has been copied out, so the producer's acquire of
// `head_` guarantees the slot is reusable. Indices are monotonically
// increasing uint64s (never wrapped), masked into the power-of-two slot
// array — full/empty is the plain difference, no reserved empty slot.
//
// Single-producer/single-consumer is a *contract*, not a property the type
// enforces: exactly one thread may call the producer end (TryPush) and one
// the consumer end (TryPop/PopBatch). The sharded executor guarantees it
// structurally — one mailbox per (producer thread, shard) lane, drained only
// by the shard's owner thread. T must be trivially copyable: slots are raw
// storage published by index, never constructed/destroyed per message.

#ifndef DDC_COMMON_SPSC_MAILBOX_H_
#define DDC_COMMON_SPSC_MAILBOX_H_

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>

namespace ddc {

template <typename T>
class SpscMailbox {
  static_assert(std::is_trivially_copyable_v<T>,
                "mailbox slots are raw storage published by index");

 public:
  // Capacity is rounded up to a power of two (>= 2) so slot selection is a
  // mask, not a modulo.
  explicit SpscMailbox(size_t min_capacity)
      : capacity_(std::bit_ceil(min_capacity < 2 ? size_t{2} : min_capacity)),
        mask_(capacity_ - 1),
        slots_(std::make_unique<T[]>(capacity_)) {}

  SpscMailbox(const SpscMailbox&) = delete;
  SpscMailbox& operator=(const SpscMailbox&) = delete;

  size_t capacity() const { return capacity_; }

  // Producer side. Returns false when the ring is full (the caller decides
  // whether to spin, yield, or count a stall — the mailbox never blocks).
  bool TryPush(const T& item) {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - cached_head_ == capacity_) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail - cached_head_ == capacity_) return false;
    }
    slots_[tail & mask_] = item;
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  // Consumer side. Returns false when the ring is empty.
  bool TryPop(T* out) {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == cached_tail_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head == cached_tail_) return false;
    }
    *out = slots_[head & mask_];
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  // Batched dequeue: drains up to `max` messages in one acquire/release
  // round trip. Returns the number popped (0 when empty). This is what the
  // owner loop uses — one index publication amortized over the whole batch.
  size_t PopBatch(T* out, size_t max) {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    uint64_t avail = cached_tail_ - head;
    if (avail == 0) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      avail = cached_tail_ - head;
      if (avail == 0) return 0;
    }
    const size_t n = avail < max ? static_cast<size_t>(avail) : max;
    for (size_t i = 0; i < n; ++i) {
      out[i] = slots_[(head + i) & mask_];
    }
    head_.store(head + n, std::memory_order_release);
    return n;
  }

  // Approximate occupancy (exact at quiescence; a racy lower/upper mix in
  // flight). For gauges and tests, never for flow control.
  size_t SizeApprox() const {
    const uint64_t tail = tail_.load(std::memory_order_acquire);
    const uint64_t head = head_.load(std::memory_order_acquire);
    return tail >= head ? static_cast<size_t>(tail - head) : 0;
  }

  bool EmptyApprox() const { return SizeApprox() == 0; }

 private:
  const size_t capacity_;
  const size_t mask_;
  std::unique_ptr<T[]> slots_;

  // Consumer-owned index of the next slot to pop; producer reads it only on
  // apparent-full. `cached_head_` is the producer's private copy.
  alignas(64) std::atomic<uint64_t> head_{0};
  alignas(64) uint64_t cached_head_ = 0;
  // Producer-owned index of the next slot to fill; consumer reads it only on
  // apparent-empty. `cached_tail_` is the consumer's private copy.
  alignas(64) std::atomic<uint64_t> tail_{0};
  alignas(64) uint64_t cached_tail_ = 0;
};

}  // namespace ddc

#endif  // DDC_COMMON_SPSC_MAILBOX_H_
