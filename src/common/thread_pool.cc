#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <utility>

#include "fault/failpoint.h"
#include "obs/metrics.h"

namespace ddc {

namespace {

// Registry handles, resolved once. queue_depth makes worker starvation
// visible: it counts tasks enqueued but not yet started, and must drain to
// zero once every ParallelFor in flight has returned (its helpers have all
// exited — see the live_helpers protocol below).
obs::Gauge& QueueDepthGauge() {
  static obs::Gauge& g =
      *obs::MetricsRegistry::Default().GetGauge("threadpool.queue_depth");
  return g;
}

obs::Histogram& QueueWaitHist() {
  static obs::Histogram& h = *obs::MetricsRegistry::Default().GetHistogram(
      "threadpool.task.queue_wait_ns");
  return h;
}

obs::Histogram& TaskRunHist() {
  static obs::Histogram& h = *obs::MetricsRegistry::Default().GetHistogram(
      "threadpool.task.run_ns");
  return h;
}

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  workers_.reserve(static_cast<size_t>(std::max(num_threads, 0)));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and drained.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::Enqueue(std::function<void()> task) {
  if (obs::Enabled()) {
    // Wrap the task so queue wait (enqueue -> first instruction) and run
    // time are split apart. The gauge pairing is captured in the wrapper:
    // a task enqueued while enabled always decrements, even if recording
    // gets disabled before it runs.
    const uint64_t enqueue_ns = obs::NowNanos();
    QueueDepthGauge().Add(1);
    task = [inner = std::move(task), enqueue_ns] {
      const uint64_t start_ns = obs::NowNanos();
      QueueDepthGauge().Add(-1);
      QueueWaitHist().Record(static_cast<int64_t>(start_ns - enqueue_ns));
      inner();
      TaskRunHist().Record(static_cast<int64_t>(obs::NowNanos() - start_ns));
    };
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  wake_.notify_one();
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  const size_t helpers_wanted =
      std::min(workers_.size(), n > 0 ? n - 1 : size_t{0});
  if (n == 1 || helpers_wanted == 0) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Shared on the caller's stack; helpers must all have *exited* (not merely
  // finished their last index) before this frame returns.
  struct State {
    std::atomic<size_t> next{0};
    std::atomic<size_t> live_helpers{0};
    std::mutex done_mutex;
    std::condition_variable done_cv;
  } state;

  auto drain = [&state, &fn, n] {
    for (;;) {
      const size_t i = state.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      fn(i);
    }
  };

  state.live_helpers.store(helpers_wanted, std::memory_order_relaxed);
  for (size_t h = 0; h < helpers_wanted; ++h) {
    Enqueue([&state, drain] {
      if (DDC_FAULTPOINT("pool.task.delay")) {
        // Stall this helper lane only (the caller lane keeps draining):
        // exercises the uneven-progress paths of ParallelFor users. (The
        // sharded executor has its own site, "sharded.owner.delay".)
        std::this_thread::sleep_for(std::chrono::microseconds(
            50 + static_cast<int64_t>(fault::RandBelow(451))));
      }
      drain();
      // Notify while still holding the mutex: the caller destroys `state`
      // (its stack frame) as soon as wait() observes zero, and wait() can
      // only return once this lock is released — which is after notify_one
      // has finished touching the condition variable. Signalling after the
      // unlock would race the caller's pthread_cond_destroy.
      std::lock_guard<std::mutex> lock(state.done_mutex);
      if (state.live_helpers.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        state.done_cv.notify_one();
      }
    });
  }

  drain();  // The caller is always one of the lanes.

  std::unique_lock<std::mutex> lock(state.done_mutex);
  state.done_cv.wait(lock, [&state] {
    return state.live_helpers.load(std::memory_order_acquire) == 0;
  });
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool pool([] {
    // DDC_POOL_THREADS overrides the sizing — tests and sanitizer runs use
    // it to force cross-thread execution on single-core hosts (where the
    // default would be 0 workers and ParallelFor would always run inline).
    if (const char* env = std::getenv("DDC_POOL_THREADS")) {
      const int forced = std::atoi(env);
      if (forced >= 0) return std::min(forced, 32);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    const int workers = hw > 1 ? static_cast<int>(hw) - 1 : 0;
    return std::min(workers, 8);
  }());
  return pool;
}

}  // namespace ddc
