#include "common/table_printer.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "common/check.h"

namespace ddc {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  DDC_CHECK(!headers_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  DDC_CHECK(row.size() == headers_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      line += "| ";
      line += std::string(widths[c] - row[c].size(), ' ');
      line += row[c];
      line += ' ';
    }
    line += "|\n";
    return line;
  };

  std::string rule;
  for (size_t c = 0; c < widths.size(); ++c) {
    rule += "+" + std::string(widths[c] + 2, '-');
  }
  rule += "+\n";

  std::string out = rule + render_row(headers_) + rule;
  for (const auto& row : rows_) out += render_row(row);
  out += rule;
  return out;
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

std::string TablePrinter::FormatInt(int64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  return buf;
}

std::string TablePrinter::FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string TablePrinter::FormatScientific(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2E", value);
  return buf;
}

}  // namespace ddc
