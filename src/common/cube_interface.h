// CubeInterface: the common contract implemented by every range-sum
// structure in this library (naive array, Prefix Sum, Relative Prefix Sum,
// Basic DDC, Dynamic Data Cube).
//
// All structures answer the same queries over the same logical array A
// (Section 2 of the paper); they differ only in cost. Integration tests and
// benchmark harnesses exercise them uniformly through this interface.

#ifndef DDC_COMMON_CUBE_INTERFACE_H_
#define DDC_COMMON_CUBE_INTERFACE_H_

#include <cstdint>
#include <span>
#include <string>

#include "common/cell.h"
#include "common/mutation.h"
#include "common/op_counter.h"
#include "common/range.h"

namespace ddc {

class CubeInterface {
 public:
  virtual ~CubeInterface() = default;

  // Number of dimensions d.
  virtual int dims() const = 0;

  // The lowest / highest cell of the current domain (inclusive). For the
  // fixed-size structures the anchor is the origin; the Dynamic Data Cube
  // may move its anchor when it grows toward negative coordinates.
  virtual Cell DomainLo() const = 0;
  virtual Cell DomainHi() const = 0;

  // Sets A[cell] to `value`.
  virtual void Set(const Cell& cell, int64_t value) = 0;

  // Adds `delta` to A[cell].
  virtual void Add(const Cell& cell, int64_t delta) = 0;

  // Returns A[cell].
  virtual int64_t Get(const Cell& cell) const = 0;

  // Adds `delta` to every cell of the closed box [box.lo .. box.hi]. The
  // box is clipped to the current domain (cells outside it are untouched);
  // an empty box — including inverted bounds — is a no-op. The default is
  // the per-cell loop; DynamicDataCube overrides it with the signed-corner
  // overlay scheme (DESIGN.md §12) and additionally grows to contain the
  // box instead of clipping, matching its point-write semantics.
  virtual void RangeAdd(const Box& box, int64_t delta);

  // Sets every cell of the clipped box to `value`. Same clipping and
  // empty-box rules as RangeAdd. Range-set is inherently Theta(|box|) for
  // nonzero `value` (each cell's prior value must be individually
  // discarded), so every implementation routes it cell-by-cell through the
  // same write pipeline as point sets.
  virtual void RangeSet(const Box& box, int64_t value);

  // Applies `batch` front to back; semantically identical to calling Add /
  // Set / RangeAdd / RangeSet per mutation in order — the contract the
  // differential tests rely on. Returns false (and applies nothing) when
  // any mutation carries the wrong coordinate arity for dims() (range
  // mutations carry 2d coordinates; see BatchWellFormed in
  // common/mutation.h); a malformed batch is a recoverable error, not an
  // abort. Structures that can amortize work across a batch (one shared
  // tree descent, per-cell delta coalescing, per-shard lock grouping, WAL
  // group commit) override this; the default is the plain loop.
  virtual bool ApplyBatch(std::span<const Mutation> batch);

  // Returns SUM(A[DomainLo() .. cell]). `cell` must be inside the domain.
  virtual int64_t PrefixSum(const Cell& cell) const = 0;

  // Returns SUM over the closed box [box.lo .. box.hi]; the box is clipped to
  // the domain. Default implementation: inclusion-exclusion over 2^d prefix
  // sums (Figure 4).
  virtual int64_t RangeSum(const Box& box) const;

  // Computes out[i] = RangeSum(ranges[i]) for every i; out.size() must
  // equal ranges.size(). Semantically identical to a loop of RangeSum
  // calls — the contract differential tests rely on. Structures that can
  // amortize work across a batch (shared tree descents, deduplicated
  // corner prefix sums, parallel fan-out) override this; the default is
  // the plain loop.
  virtual void RangeSumBatch(std::span<const Box> ranges,
                             std::span<int64_t> out) const;

  // Total stored values (cells of auxiliary arrays, tree entries, ...). Used
  // for the Table 2 storage experiments.
  virtual int64_t StorageCells() const = 0;

  // Measured-cost counters; mutated by const queries as well, so they are
  // conceptually mutable statistics.
  const OpCounters& counters() const { return counters_; }
  void ResetCounters() { counters_.Reset(); }

  virtual std::string name() const = 0;

 protected:
  mutable OpCounters counters_;
};

}  // namespace ddc

#endif  // DDC_COMMON_CUBE_INTERFACE_H_
