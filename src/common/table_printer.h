// TablePrinter: fixed-width console tables for the benchmark harnesses that
// regenerate the paper's tables and figure series.

#ifndef DDC_COMMON_TABLE_PRINTER_H_
#define DDC_COMMON_TABLE_PRINTER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ddc {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> row);

  // Renders the table with a header rule, column-width autosizing, and
  // right-aligned cells (numbers dominate).
  std::string ToString() const;

  // Convenience: renders and writes to stdout.
  void Print() const;

  // Formatting helpers for row construction.
  static std::string FormatInt(int64_t value);
  static std::string FormatDouble(double value, int precision);
  // Scientific "1.2E+34" style used for the huge Table 1 magnitudes.
  static std::string FormatScientific(double value);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ddc

#endif  // DDC_COMMON_TABLE_PRINTER_H_
