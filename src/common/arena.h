// Arena: a bump-pointer allocator backing one cube's tree structures.
//
// The Dynamic Data Cube materializes many small, long-lived objects — tree
// nodes, overlay boxes, face stores, B_c-tree nodes — whose lifetimes all
// end together, when the owning cube is destroyed or re-rooted. Allocating
// each of them individually (the seed's unique_ptr-per-node layout) spreads
// a single O(log^d n) descent across the heap; an arena packs objects in
// allocation order, which is close to descent order, so a query touches a
// handful of contiguous blocks instead of a pointer chase.
//
// Lifetime rules (see DESIGN.md §8):
//   * An arena dies with (or before) the structure it backs; nothing ever
//     frees an individual object.
//   * Growth and shrink re-rooting build the new core in a *fresh* arena and
//     drop the old one wholesale, so a re-rooted cube never carries dead
//     nodes from its previous life.
//   * Objects that own heap memory (raw-leaf MdArrays, Fenwick trees, nested
//     cores) register their destructor; destructors run in reverse
//     registration order when the arena dies. Trivially destructible types
//     skip registration entirely, which is the common case by design.
//
// Not thread-safe: an arena belongs to one cube, and cubes require external
// synchronization for writes (the concurrent facades hold exclusive locks
// while allocating).

#ifndef DDC_COMMON_ARENA_H_
#define DDC_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/check.h"
#include "fault/failpoint.h"
#include "obs/metrics.h"

namespace ddc {

namespace arena_internal {

// Process-wide arena churn metrics. Growth/shrink re-rooting builds the new
// tree in a fresh arena and drops the old one wholesale, so the allocated /
// retired pair exposes exactly the block churn that re-rooting causes.
inline obs::Counter& BlocksAllocated() {
  static obs::Counter& c =
      *obs::MetricsRegistry::Default().GetCounter("arena.blocks_allocated");
  return c;
}

inline obs::Counter& BlocksRetired() {
  static obs::Counter& c =
      *obs::MetricsRegistry::Default().GetCounter("arena.blocks_retired");
  return c;
}

inline obs::Counter& BytesReserved() {
  static obs::Counter& c =
      *obs::MetricsRegistry::Default().GetCounter("arena.bytes_reserved");
  return c;
}

}  // namespace arena_internal

class Arena {
 public:
  // Every block base is aligned to this, so Allocate() can honor any
  // power-of-two alignment up to it — the cache-line-sized node layouts
  // (BcTree, kernel descents) depend on 64-byte placement.
  static constexpr size_t kMaxAlign = 64;

  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  ~Arena() {
    // Reverse order: later objects may (in principle) reference earlier
    // ones; none of the registered destructors touch arena memory.
    for (auto it = cleanups_.rbegin(); it != cleanups_.rend(); ++it) {
      it->destroy(it->object);
    }
    if (obs::Enabled() && !blocks_.empty()) {
      arena_internal::BlocksRetired().Add(
          static_cast<int64_t>(blocks_.size()));
    }
  }

  // Raw aligned allocation. `align` must be a power of two <= kMaxAlign.
  // Alignment is real, not incidental: block bases are 64-byte aligned, so
  // an aligned offset within the block is an aligned address (the seed's
  // blocks were only new[]-aligned, which silently capped usable alignment
  // at 16 bytes).
  void* Allocate(size_t bytes, size_t align) {
    DDC_DCHECK(align > 0 && align <= kMaxAlign &&
               (align & (align - 1)) == 0);
    size_t offset = (cursor_ + align - 1) & ~(align - 1);
    if (offset + bytes > block_size_) {
      NewBlock(bytes, align);
      offset = (cursor_ + align - 1) & ~(align - 1);
    }
    cursor_ = offset + bytes;
    bytes_used_ = bytes_total_ - block_size_ + cursor_;
    return block_ + offset;
  }

  // Cache-line-aligned allocation: the returned address is 64-byte aligned,
  // so a block of up to 64 bytes occupies exactly one cache line. Used for
  // the fixed-fanout B_c-tree node slabs, where one descent level must cost
  // one line fill.
  void* AllocateAligned(size_t bytes) { return Allocate(bytes, kMaxAlign); }

  // Constructs a T in the arena. Registers T's destructor unless T is
  // trivially destructible; either way the object must never be deleted.
  template <typename T, typename... Args>
  T* Create(Args&&... args) {
    T* object = new (Allocate(sizeof(T), alignof(T)))
        T(std::forward<Args>(args)...);
    if constexpr (!std::is_trivially_destructible_v<T>) {
      cleanups_.push_back(
          {object, [](void* p) { static_cast<T*>(p)->~T(); }});
    }
    return object;
  }

  // Allocates an array of `count` value-initialized Ts. T must be trivially
  // destructible (arrays of owning objects should be arrays of pointers to
  // individually Create()d objects instead).
  template <typename T>
  T* CreateArray(size_t count) {
    static_assert(std::is_trivially_destructible_v<T>);
    T* array = static_cast<T*>(Allocate(sizeof(T) * count, alignof(T)));
    for (size_t i = 0; i < count; ++i) new (array + i) T();
    return array;
  }

  // Total bytes handed out (excluding block-rounding slack at block ends).
  size_t bytes_used() const { return bytes_used_; }
  // Total bytes reserved from the heap across all blocks.
  size_t bytes_reserved() const { return bytes_total_; }
  size_t num_blocks() const { return blocks_.size(); }

 private:
  // Blocks start small (one node-rich page) and double up to a cap, so tiny
  // nested structures cost one page while big cubes amortize block churn.
  static constexpr size_t kMinBlock = 4096;
  static constexpr size_t kMaxBlock = 256 * 1024;

  struct Cleanup {
    void* object;
    void (*destroy)(void*);
  };

  void NewBlock(size_t bytes, size_t align) {
    if (DDC_FAULTPOINT("arena.alloc.fail")) {
      // Injected allocation failure, raised before any arena state changes:
      // the cube that was mid-descent may hold a partially applied batch,
      // so the owner must discard it (durable state is unaffected — the WAL
      // already holds the record).
      fault::RaiseAllocFailure("arena.alloc.fail");
    }
    size_t want = next_block_size_;
    // Oversized single objects get their own block.
    if (bytes + align > want) want = bytes + align;
    // Over-allocate by kMaxAlign and round the base up, so every block base
    // is 64-byte aligned regardless of what new[] returned.
    blocks_.push_back(std::make_unique<char[]>(want + kMaxAlign));
    const uintptr_t raw =
        reinterpret_cast<uintptr_t>(blocks_.back().get());
    block_ = reinterpret_cast<char*>((raw + kMaxAlign - 1) &
                                     ~(uintptr_t{kMaxAlign} - 1));
    block_size_ = want;
    cursor_ = 0;
    bytes_total_ += want;
    if (next_block_size_ < kMaxBlock) next_block_size_ *= 2;
    if (obs::Enabled()) {
      arena_internal::BlocksAllocated().Increment();
      arena_internal::BytesReserved().Add(static_cast<int64_t>(want));
    }
  }

  std::vector<std::unique_ptr<char[]>> blocks_;
  std::vector<Cleanup> cleanups_;
  char* block_ = nullptr;
  size_t block_size_ = 0;   // Capacity of the current block.
  size_t cursor_ = 0;       // Fill level of the current block.
  size_t next_block_size_ = kMinBlock;
  size_t bytes_used_ = 0;
  size_t bytes_total_ = 0;
};

}  // namespace ddc

#endif  // DDC_COMMON_ARENA_H_
