// ThreadPool: a small fixed worker pool for fanning read-only query work
// out across cores (the batched range-sum executor's parallel path).
//
// Design constraints, in order:
//   1. The caller always participates: ParallelFor pulls indices on the
//      calling thread too, so progress never depends on a worker being
//      free. This is what makes it safe to call ParallelFor while holding
//      shard locks (the sharded fallback path) — a busy or size-1 pool can
//      never deadlock the caller.
//   2. Tasks must not block on the pool (no nested ParallelFor from inside
//      a task); they are pure computations, typically const tree reads.
//   3. Degrades gracefully: on a single-core host (or n <= 1) the loop runs
//      inline with zero synchronization, so the serial batched path is
//      never penalized.
//
// The process-wide Shared() pool sizes itself to the hardware and is what
// the concurrent cubes use; owning a private pool is supported for tests.

#ifndef DDC_COMMON_THREAD_POOL_H_
#define DDC_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ddc {

class ThreadPool {
 public:
  // `num_threads` worker threads in addition to participating callers;
  // 0 is allowed and makes every ParallelFor run inline.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  // Invokes fn(0) .. fn(n-1), distributing indices across the pool and the
  // calling thread, and returns when every invocation has completed. fn
  // must not call back into this pool and must not throw.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  // Process-wide pool: hardware_concurrency - 1 workers (the caller is the
  // remaining lane), capped at 8 — batched fan-out saturates well before
  // that, and a modest cap keeps many-core machines polite.
  static ThreadPool& Shared();

 private:
  void WorkerLoop();
  void Enqueue(std::function<void()> task);

  std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace ddc

#endif  // DDC_COMMON_THREAD_POOL_H_
