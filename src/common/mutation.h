// Mutation: the common unit of the batched write path.
//
// Every cube accepts writes either one at a time (Set/Add virtuals) or as a
// MutationBatch through CubeInterface::ApplyBatch. A batch is semantically a
// *sequence*: applying it must be indistinguishable from applying each
// mutation in order with Add/Set. That sequencing matters only when a batch
// touches the same cell more than once — CoalesceMutations below folds such
// runs into a single net effect per cell so that batched implementations can
// do one tree descent per distinct cell without changing the observable
// result.

#ifndef DDC_COMMON_MUTATION_H_
#define DDC_COMMON_MUTATION_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/cell.h"

namespace ddc {

// What a mutation does to its cell: kAdd means A[cell] += value, kSet means
// A[cell] = value.
enum class MutationKind { kAdd, kSet };

// A single point write. `delta` is the additive delta for kAdd and the
// assigned value for kSet.
struct Mutation {
  Cell cell;
  int64_t delta;
  MutationKind kind = MutationKind::kAdd;
};

// An ordered sequence of mutations, applied front to back.
using MutationBatch = std::vector<Mutation>;

// True iff every mutation's cell has exactly `dims` coordinates. ApplyBatch
// implementations check this before touching any state and reject the batch
// as a recoverable error (return false, nothing applied) — a malformed
// batch is a caller bug the durability and query layers must surface, not
// die on.
inline bool BatchWellFormed(std::span<const Mutation> batch, int dims) {
  const size_t d = static_cast<size_t>(dims);
  for (const Mutation& m : batch) {
    if (m.cell.size() != d) return false;
  }
  return true;
}

// Historical spellings, kept so existing call sites (ShardedCube batches,
// workload generators, benches) compile unchanged.
using UpdateKind = MutationKind;
using UpdateOp = Mutation;

// The per-cell net effect of a mutation subsequence. If `has_set` is false
// the cell's run was pure kAdd and `pending_add` is the total delta. If
// `has_set` is true the run contains at least one kSet; the final value is
// `set_value + pending_add` regardless of what the cell held before, so the
// equivalent single Add delta is `set_value + pending_add - <current
// value>`.
struct CoalescedCell {
  Cell cell;
  int64_t pending_add = 0;
  bool has_set = false;
  int64_t set_value = 0;
};

// Folds `batch` into one CoalescedCell per distinct cell, preserving the
// order in which cells first appear. Sequential semantics are preserved
// exactly: a kSet discards any earlier effect on its cell, and kAdds after
// it accumulate on top of the set value.
inline std::vector<CoalescedCell> CoalesceMutations(
    std::span<const Mutation> batch) {
  std::vector<CoalescedCell> cells;
  cells.reserve(batch.size());
  std::unordered_map<Cell, size_t, CellHash> index;
  index.reserve(batch.size());
  for (const Mutation& m : batch) {
    auto [it, inserted] = index.try_emplace(m.cell, cells.size());
    if (inserted) cells.push_back(CoalescedCell{m.cell, 0, false, 0});
    CoalescedCell& c = cells[it->second];
    if (m.kind == MutationKind::kSet) {
      c.has_set = true;
      c.set_value = m.delta;
      c.pending_add = 0;
    } else {
      c.pending_add += m.delta;
    }
  }
  return cells;
}

}  // namespace ddc

#endif  // DDC_COMMON_MUTATION_H_
