// Mutation: the common unit of the batched write path.
//
// Every cube accepts writes either one at a time (Set/Add virtuals) or as a
// MutationBatch through CubeInterface::ApplyBatch. A batch is semantically a
// *sequence*: applying it must be indistinguishable from applying each
// mutation in order with Add/Set/RangeAdd/RangeSet. That sequencing matters
// only when mutations overlap on cells — CoalesceMutations below folds
// point runs into a single net effect per cell so that batched
// implementations can do one tree descent per distinct cell without
// changing the observable result, and BuildCoalesceProgram extends the same
// idea to batches that also carry hyper-rectangle (range) mutations.

#ifndef DDC_COMMON_MUTATION_H_
#define DDC_COMMON_MUTATION_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/cell.h"
#include "common/range.h"

namespace ddc {

// What a mutation does. Point kinds: kAdd means A[cell] += value, kSet means
// A[cell] = value. Range kinds operate on every cell of the closed box
// [cell .. hi]: kRangeAdd means A[c] += value for all c in the box, kRangeSet
// means A[c] = value for all c in the box. An empty box (lo[i] > hi[i] in
// any dimension) is a no-op, which makes inverted bounds from untrusted
// query text harmless by construction.
enum class MutationKind { kAdd, kSet, kRangeAdd, kRangeSet };

inline bool IsRangeKind(MutationKind kind) {
  return kind == MutationKind::kRangeAdd || kind == MutationKind::kRangeSet;
}

// A single write. For point kinds `cell` is the target and `hi` must be
// empty; for range kinds `cell` is the box's low corner and `hi` its high
// corner (both inclusive — a range mutation carries 2d coordinates).
// `delta` is the additive delta for kAdd/kRangeAdd and the assigned value
// for kSet/kRangeSet.
struct Mutation {
  Cell cell;
  int64_t delta = 0;
  MutationKind kind = MutationKind::kAdd;
  Cell hi{};

  bool is_range() const { return IsRangeKind(kind); }
  // The box a range mutation covers. Only meaningful when is_range().
  Box box() const { return Box{cell, hi}; }
};

inline Mutation MakeRangeAdd(Cell lo, Cell hi, int64_t delta) {
  return Mutation{std::move(lo), delta, MutationKind::kRangeAdd,
                  std::move(hi)};
}

inline Mutation MakeRangeSet(Cell lo, Cell hi, int64_t value) {
  return Mutation{std::move(lo), value, MutationKind::kRangeSet,
                  std::move(hi)};
}

// An ordered sequence of mutations, applied front to back.
using MutationBatch = std::vector<Mutation>;

// True iff every mutation carries the right number of coordinates for
// `dims`: point mutations need a dims-ary cell and an *empty* hi (a point
// with a stray high corner is a malformed range, not a point), range
// mutations need dims-ary cell and hi both. ApplyBatch implementations
// check this before touching any state and reject the batch as a
// recoverable error (return false, nothing applied) — a malformed batch is
// a caller bug the durability and query layers must surface, not die on.
inline bool BatchWellFormed(std::span<const Mutation> batch, int dims) {
  const size_t d = static_cast<size_t>(dims);
  for (const Mutation& m : batch) {
    if (m.cell.size() != d) return false;
    if (m.is_range() ? m.hi.size() != d : !m.hi.empty()) return false;
  }
  return true;
}

// The box of cells a mutation can change: the degenerate one-cell box for
// point kinds, the carried box for range kinds. This is the "dirty box" the
// query-result cache intersects against cached entries — a mutation whose
// dirty box is disjoint from an entry's box cannot change that entry's sum.
// Precondition: the mutation is well formed (see BatchWellFormed); a range
// mutation with inverted bounds yields an empty box, matching its no-op
// apply semantics.
inline Box MutationDirtyBox(const Mutation& m) {
  return m.is_range() ? m.box() : Box{m.cell, m.cell};
}

// The bounding box of every dirty box in `batch` (componentwise min of the
// low corners, max of the high corners). Used as a one-test fast reject
// before the per-mutation overlap scan, and to detect batches that write
// outside a cached domain snapshot. Returns false (leaving *bounds
// untouched) when the batch contains no non-empty dirty box. Precondition:
// BatchWellFormed(batch, dims).
inline bool BatchDirtyBounds(std::span<const Mutation> batch, Box* bounds) {
  // Accumulates in place: the write path calls this once per batch, and a
  // temporary Box (or CellMin/CellMax result) per mutation is four Cell
  // allocations each — measurable against the batch apply itself.
  bool any = false;
  for (const Mutation& m : batch) {
    const Cell& lo = m.cell;
    const Cell& hi = m.is_range() ? m.hi : m.cell;
    if (m.is_range()) {
      bool empty = false;
      for (size_t d = 0; d < lo.size(); ++d) {
        if (lo[d] > hi[d]) {
          empty = true;
          break;
        }
      }
      if (empty) continue;
    }
    if (!any) {
      bounds->lo = lo;
      bounds->hi = hi;
      any = true;
      continue;
    }
    for (size_t d = 0; d < lo.size(); ++d) {
      if (lo[d] < bounds->lo[d]) bounds->lo[d] = lo[d];
      if (hi[d] > bounds->hi[d]) bounds->hi[d] = hi[d];
    }
  }
  return any;
}

// True iff any mutation in `batch` is a range kind. Layers whose fast path
// only understands points (per-slab scatter, coalesce-before-submit) use
// this to route range-carrying batches through their exact slow path.
inline bool BatchHasRange(std::span<const Mutation> batch) {
  for (const Mutation& m : batch) {
    if (m.is_range()) return true;
  }
  return false;
}

// Historical spellings, kept so existing call sites (ShardedCube batches,
// workload generators, benches) compile unchanged.
using UpdateKind = MutationKind;
using UpdateOp = Mutation;

// The per-cell net effect of a mutation subsequence. If `has_set` is false
// the cell's run was pure kAdd and `pending_add` is the total delta. If
// `has_set` is true the run contains at least one kSet; the final value is
// `set_value + pending_add` regardless of what the cell held before, so the
// equivalent single Add delta is `set_value + pending_add - <current
// value>`.
struct CoalescedCell {
  Cell cell;
  int64_t pending_add = 0;
  bool has_set = false;
  int64_t set_value = 0;
};

// Folds a *point-only* `batch` into one CoalescedCell per distinct cell,
// preserving the order in which cells first appear. Sequential semantics
// are preserved exactly: a kSet discards any earlier effect on its cell,
// and kAdds after it accumulate on top of the set value. Precondition: no
// range mutations (they cannot be folded per-cell; use
// BuildCoalesceProgram for mixed batches).
inline std::vector<CoalescedCell> CoalesceMutations(
    std::span<const Mutation> batch) {
  std::vector<CoalescedCell> cells;
  cells.reserve(batch.size());
  std::unordered_map<Cell, size_t, CellHash> index;
  index.reserve(batch.size());
  for (const Mutation& m : batch) {
    auto [it, inserted] = index.try_emplace(m.cell, cells.size());
    if (inserted) cells.push_back(CoalescedCell{m.cell, 0, false, 0});
    CoalescedCell& c = cells[it->second];
    if (m.kind == MutationKind::kSet) {
      c.has_set = true;
      c.set_value = m.delta;
      c.pending_add = 0;
    } else {
      c.pending_add += m.delta;
    }
  }
  return cells;
}

// One step of a coalesce program: a run of point mutations folded per cell
// (first-appearance order), optionally followed by one range mutation. The
// program's steps applied front to back — each step's coalesced points
// first, then its range op — reproduce the batch's sequential semantics
// exactly.
struct CoalescedStep {
  std::vector<CoalescedCell> points;
  bool has_range = false;
  Mutation range;  // Meaningful only when has_range.
};

// Splits `batch` into CoalescedSteps. Every range mutation acts as a
// barrier: it closes the current point run (points before it happened
// before it; points after it open a new step). This is deliberately
// conservative — a range op is a barrier even for cells it does not cover —
// because it keeps the transform trivially order-exact for every
// interleaving, which the property tests check against a cell-by-cell
// oracle. Point runs between barriers still coalesce to one descent per
// distinct cell, so the common point-heavy batch loses nothing.
inline std::vector<CoalescedStep> BuildCoalesceProgram(
    std::span<const Mutation> batch) {
  std::vector<CoalescedStep> steps;
  MutationBatch run;
  for (const Mutation& m : batch) {
    if (!m.is_range()) {
      run.push_back(m);
      continue;
    }
    CoalescedStep step;
    step.points = CoalesceMutations(run);
    run.clear();
    step.has_range = true;
    step.range = m;
    steps.push_back(std::move(step));
  }
  if (!run.empty()) {
    CoalescedStep step;
    step.points = CoalesceMutations(run);
    steps.push_back(std::move(step));
  }
  return steps;
}

}  // namespace ddc

#endif  // DDC_COMMON_MUTATION_H_
