#include "common/cost_model.h"

#include <cmath>
#include <cstdio>

#include "common/bit_util.h"
#include "common/check.h"

namespace ddc {

double FullCubeSizeCost(double n, int d) { return std::pow(n, d); }

double PrefixSumUpdateCost(double n, int d) { return std::pow(n, d); }

double RelativePrefixSumUpdateCost(double n, int d) {
  return std::pow(n, static_cast<double>(d) / 2.0);
}

double DynamicDataCubeUpdateCost(double n, int d) {
  return std::pow(std::log2(n), d);
}

double BasicDdcUpdateCost(double n, int d) {
  DDC_CHECK(d >= 1);
  if (d == 1) {
    // One value per level, log2(n) levels.
    return std::log2(n);
  }
  const double pow_term = std::pow(n, d - 1);
  const double denom = std::pow(2.0, d - 1) - 1.0;
  return d * (pow_term - 1.0) / denom;
}

int64_t OverlayBoxStorageCells(int64_t k, int d) {
  return IPow(k, d) - IPow(k - 1, d);
}

int64_t OverlayBoxRegionCells(int64_t k, int d) { return IPow(k, d); }

std::string RoundToPowerOfTenString(double value) {
  DDC_CHECK(value > 0);
  const int exponent = static_cast<int>(std::lround(std::log10(value)));
  char buf[32];
  std::snprintf(buf, sizeof(buf), "1E+%02d", exponent);
  return buf;
}

}  // namespace ddc
